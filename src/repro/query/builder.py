"""The fluent query builder: selections and projections over the engine.

The paper's algorithms answer *full* conjunctive queries; every realistic
workload wraps them in selections (``sigma``) and projections (``pi``)
— Section 2's operators, which :class:`~repro.relations.relation.
Relation` has always implemented but the engine never saw.  This module
closes that gap with an immutable builder::

    from repro import Q

    rows = (
        Q(r, s, t)
        .where(A=1)               # equality: pushed into the plan
        .where_in("B", {2, 3})    # membership: per-level filter hook
        .select("B", "C")         # projection: streamed + deduplicated
        .stream()
    )

Three pushdown mechanisms, in decreasing strength:

* **Equality** (:meth:`QueryBuilder.where`) *eliminates the attribute's
  level entirely*: every relation containing the attribute is replaced
  by its ``t_S``-section (Section 2's ``R[t_S]``) at plan time, so the
  engine joins a smaller *residual* query over fewer attributes — the
  ahead-of-time evaluation Remark 5.2 gets from indexing in advance.  A
  relation whose attributes are all bound degenerates to a membership
  *guard*: it contributes no residual constraint, but an empty section
  proves the whole result empty before anything runs.  Because each
  shrunken relation still embeds in the original, the AGM bound of the
  residual query is at most the original bound — pushdown never
  worsens the worst case.
* **Membership and predicates** (:meth:`QueryBuilder.where_in`,
  :meth:`QueryBuilder.filter`) become *residual filters*: single-
  attribute tests the executors evaluate at the level that binds the
  attribute (pruning whole subtrees in Generic Join / Leapfrog) or, for
  the blocking specialists, against emitted rows.
* **Projection** (:meth:`QueryBuilder.select`) streams over the result:
  rows are projected and deduplicated on the fly with memory
  proportional to the *projected* output, never materializing the full
  join.

Execution options ride in an :class:`~repro.query.context.
ExecutionContext` (:meth:`QueryBuilder.using` / :meth:`QueryBuilder.on`)
— one object instead of the six-keyword lists `repro.api` used to copy
between entry points.  ``prepare()`` freezes the plan and its indexes
into a :class:`~repro.query.prepared.PreparedQuery` for repeated
execution.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, replace as _dc_replace

from repro.aggregate.fold import Folder, fold_rows
from repro.aggregate.sampling import reservoir_sample, sample_query
from repro.aggregate.specs import (
    AggregateSpec,
    Avg,
    Count,
    CountDistinct,
    Max,
    Min,
    Sum,
    grouped,
)
from repro.core.query import JoinQuery
from repro.engine import parallel as _parallel
from repro.engine.executors import NATIVE_FOLD, NATIVE_TELEMETRY
from repro.engine.planner import NO_BACKEND, JoinPlan, plan_join
from repro.errors import QueryError, require_positive_int
from repro.feedback.telemetry import TelemetryProbe, feedback_scope
from repro.query.context import ExecutionContext
from repro.stats.provider import resolve_provider
from repro.query.predicates import (
    Callback,
    ResidualPredicate,
    ValueIn,
    combine,
)
from repro.relations.relation import Relation, Row, Value

__all__ = ["Q", "QueryBuilder"]


def _as_query(
    relations: tuple,
) -> JoinQuery:
    """Normalize ``Q``'s argument spellings into one ``JoinQuery``."""
    if len(relations) == 1:
        only = relations[0]
        if isinstance(only, JoinQuery):
            return only
        if not isinstance(only, Relation) and isinstance(only, Iterable):
            return JoinQuery(list(only))
    return JoinQuery(list(relations))


@dataclass(frozen=True)
class _Compiled:
    """Everything one execution of a builder needs, precomputed."""

    #: False when a guard already proved the result empty.
    satisfiable: bool
    #: The residual query the engine will run, or ``None`` when every
    #: relation degenerated to a guard (all attributes bound).
    residual: JoinQuery | None
    #: Residual predicate per *unbound* filtered attribute.
    filters: dict[str, ResidualPredicate]
    #: ``(attribute, value)`` pairs, in the query's attribute order.
    bound: tuple[tuple[str, Value], ...]
    #: Maps a residual row to a full-schema row (``None`` = identity).
    merge: Callable[[Row], Row] | None
    #: The full output schema (the original query's attributes).
    output_attributes: tuple[str, ...]


def recorded_rows(
    rows: Iterator[Row],
    probe,
    provider,
    query,
    scope: tuple = (),
    metrics=None,
    database=None,
) -> Iterator[Row]:
    """Stream ``rows``, then feed the run's measurements back.

    Everything is recorded only when the stream is exhausted *naturally*
    — a consumer that stops early closed the generator, and its
    undercounted telemetry must not reach the planner (or inflate the
    metrics registry's run counters).  Three sinks, each optional:

    * ``probe``/``provider`` — the feedback loop: the probe's per-level
      counters are snapshotted and recorded into the statistics provider
      (the pre-observability behavior, unchanged);
    * ``metrics`` — a :class:`~repro.observe.metrics.MetricsRegistry`:
      fed the probe's snapshot when one exists, the bare row count
      otherwise (no instrumentation twin is ever built for metrics
      alone);
    * ``database`` — with ``metrics``, its ``cache_info()`` counters are
      mirrored into the registry after the run.

    Shared by the builder's serial path and :class:`~repro.query.
    prepared.PreparedQuery` runs.
    """
    from time import perf_counter

    started = perf_counter()
    count = 0
    for row in rows:
        count += 1
        yield row
    telemetry = None
    if probe is not None:
        telemetry = probe.snapshot(
            count, perf_counter() - started, complete=True
        )
        if provider is not None:
            provider.record_levels(query, telemetry, scope)
    if metrics is not None:
        if telemetry is not None:
            metrics.record_run(telemetry)
        else:
            metrics.record_rows(count)
        if database is not None:
            metrics.record_cache(database.cache_info())


def traced_rows(tracer, rows: Iterator[Row], **meta) -> Iterator[Row]:
    """Stream ``rows`` inside an ``execute`` span of ``tracer``.

    The span covers first ``next()`` to exhaustion (or early close) and
    records the row count on natural exhaustion.  Must wrap the
    *outermost* row stream so recording/metrics wrappers fall inside the
    measured window.
    """
    with tracer.span("execute", **meta) as span:
        count = 0
        for row in rows:
            count += 1
            yield row
        span.meta["rows"] = count


def drain_async(batched: Iterator[list[Row]]):
    """Adapt a batch iterator into an async row iterator.

    The blocking ``next()`` runs on worker threads via
    ``asyncio.to_thread``; the event loop receives rows one batch at a
    time.  Shared by :meth:`QueryBuilder.astream` and
    :meth:`~repro.query.prepared.PreparedQuery.astream`.
    """

    async def _astream():
        import asyncio

        while True:
            batch = await asyncio.to_thread(next, batched, None)
            if batch is None:
                return
            for row in batch:
                yield row

    return _astream()


def Q(*relations, context: ExecutionContext | None = None) -> "QueryBuilder":
    """Start a fluent query: ``Q(r, s, t)`` (or ``Q([r, s, t])`` /
    ``Q(join_query)``).

    Returns an immutable :class:`QueryBuilder`; every fluent method
    derives a new builder, so partially-built queries can be shared and
    extended without aliasing surprises.
    """
    return QueryBuilder(_as_query(relations), context=context)


class QueryBuilder:
    """An immutable conjunctive query with selections and a projection.

    Holds *what* to compute: the join query, equality bindings, residual
    predicates, and the output projection.  *How* to compute it lives in
    the attached :class:`~repro.query.context.ExecutionContext`.  Every
    fluent method returns a new builder; instances are safe to share,
    reuse, and prepare.
    """

    __slots__ = (
        "query",
        "context",
        "bindings",
        "predicates",
        "selected",
        "_compiled_cache",
    )

    def __init__(
        self,
        query: JoinQuery,
        context: ExecutionContext | None = None,
        bindings: tuple[tuple[str, Value], ...] = (),
        predicates: tuple[ResidualPredicate, ...] = (),
        selected: tuple[str, ...] | None = None,
    ) -> None:
        object.__setattr__(self, "query", query)
        object.__setattr__(
            self,
            "context",
            context if context is not None else ExecutionContext(),
        )
        object.__setattr__(self, "bindings", bindings)
        object.__setattr__(self, "predicates", predicates)
        object.__setattr__(self, "selected", selected)
        object.__setattr__(self, "_compiled_cache", None)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("QueryBuilder instances are immutable")

    def _derive(self, **changes) -> "QueryBuilder":
        kwargs = {
            "query": self.query,
            "context": self.context,
            "bindings": self.bindings,
            "predicates": self.predicates,
            "selected": self.selected,
        }
        kwargs.update(changes)
        return QueryBuilder(**kwargs)

    def _require_attribute(self, attribute: str, what: str) -> None:
        if attribute not in self.query.attributes:
            raise QueryError(
                f"{what} names unknown attribute {attribute!r}; the "
                f"query's attributes are {self.query.attributes!r}"
            )

    # -- the fluent surface -------------------------------------------------

    def where(self, **equalities: Value) -> "QueryBuilder":
        """Bind attributes to constants: ``where(A=1, B=2)``.

        Equality clauses are *pushed into the plan*: each bound
        attribute's level is eliminated by sectioning the relations
        that contain it, so the engine never enumerates candidates for
        it.  Binding the same attribute twice to the same value is a
        no-op; to a different value, an error (the contradiction is
        almost certainly a bug at the call site).
        """
        current = dict(self.bindings)
        for attribute, value in equalities.items():
            self._require_attribute(attribute, "where() clause")
            if attribute in current and current[attribute] != value:
                raise QueryError(
                    f"attribute {attribute!r} is already bound to "
                    f"{current[attribute]!r}; binding it to {value!r} too "
                    "would make every result row impossible (use "
                    "where_in() for a disjunction, or bind() on a "
                    "prepared query to rebind)"
                )
            current[attribute] = value
        ordered = tuple(
            (a, current[a]) for a in self.query.attributes if a in current
        )
        return self._derive(bindings=ordered)

    def where_in(
        self, attribute: str, values: Iterable[Value]
    ) -> "QueryBuilder":
        """Keep rows whose ``attribute`` lies in ``values``.

        Runs as a residual filter at the attribute's level (the engine
        prunes non-members before recursing below them); an empty value
        set makes the result empty.
        """
        self._require_attribute(attribute, "where_in() clause")
        return self._derive(
            predicates=self.predicates + (ValueIn(attribute, values),)
        )

    def filter(
        self,
        attribute: str,
        predicate: Callable[[Value], bool],
        label: str | None = None,
    ) -> "QueryBuilder":
        """Keep rows where ``predicate(value of attribute)`` holds.

        The predicate runs as a residual per-level filter, like
        :meth:`where_in`; ``label`` names it in ``explain`` output.
        Lambdas are fine for serial/thread execution; for process-pool
        sharding the predicate must pickle (the driver otherwise falls
        back to threads automatically).
        """
        self._require_attribute(attribute, "filter() clause")
        if isinstance(predicate, ResidualPredicate):
            if predicate.attribute != attribute:
                raise QueryError(
                    f"predicate is attached to {predicate.attribute!r}, "
                    f"not {attribute!r}"
                )
            clause = predicate
        else:
            clause = Callback(attribute, predicate, label)
        return self._derive(predicates=self.predicates + (clause,))

    def select(self, *attributes: str) -> "QueryBuilder":
        """Project the output onto ``attributes`` (in the given order).

        The projection is *streamed*: rows are projected and
        deduplicated as the join produces them, so memory is bounded by
        the projected result, not the full join.  ``select()`` with no
        arguments is the Boolean projection — the result holds one
        empty tuple when the (filtered) join is non-empty, none
        otherwise.
        """
        seen: set[str] = set()
        for attribute in attributes:
            self._require_attribute(attribute, "select() clause")
            if attribute in seen:
                raise QueryError(
                    f"select() names attribute {attribute!r} twice"
                )
            seen.add(attribute)
        return self._derive(selected=tuple(attributes))

    def using(
        self, context: ExecutionContext | None = None, **options
    ) -> "QueryBuilder":
        """Attach execution options: a whole :class:`ExecutionContext`,
        or keyword updates to the current one (``using(shards=4,
        mode="thread")``)."""
        if context is not None:
            if options:
                raise QueryError(
                    "pass either a context or keyword options, not both"
                )
            return self._derive(context=context)
        return self._derive(context=self.context.replace(**options))

    def on(self, database) -> "QueryBuilder":
        """Sugar for ``using(database=db)`` — run against a catalog's
        cached indexes and statistics."""
        return self.using(database=database)

    # -- compilation --------------------------------------------------------

    def _compile(self) -> _Compiled:
        """Section the query by its bindings; assemble filters and the
        output row merger.

        Memoized: the builder is immutable and relations are
        value-immutable, so sectioning is computed once per builder —
        ``prepare()``, ``plan()``, and repeated ``stream()`` calls all
        share one set of section objects.
        """
        if self._compiled_cache is not None:
            return self._compiled_cache
        compiled = self._compile_uncached()
        object.__setattr__(self, "_compiled_cache", compiled)
        return compiled

    def _compile_uncached(self) -> _Compiled:
        bindings = dict(self.bindings)
        out_attrs = self.query.attributes
        bound = self.bindings

        # Predicates over bound attributes are decided now, once.
        by_attr: dict[str, list[ResidualPredicate]] = {}
        for predicate in self.predicates:
            attribute = predicate.attribute
            if attribute in bindings:
                if not predicate(bindings[attribute]):
                    return _Compiled(
                        False, None, {}, bound, None, out_attrs
                    )
            else:
                by_attr.setdefault(attribute, []).append(predicate)
        filters = {
            attribute: combine(attribute, parts)
            for attribute, parts in by_attr.items()
        }

        # Section every relation containing a bound attribute.
        kept: list[Relation] = []
        for eid in self.query.edge_ids:
            relation = self.query.relation(eid)
            here = {
                a: v for a, v in bindings.items() if a in relation.attribute_set
            }
            if not here:
                kept.append(relation)
                continue
            section = relation.section(here).with_name(relation.name)
            if not section.attributes:
                # Fully bound: a pure membership guard (Section 2's
                # R[t_S] over S = attrs(R) is {()} or {}).
                if section.is_empty():
                    return _Compiled(
                        False, None, filters, bound, None, out_attrs
                    )
                continue
            kept.append(section)
        if not kept:
            return _Compiled(True, None, filters, bound, None, out_attrs)
        residual = JoinQuery(kept)

        merge: Callable[[Row], Row] | None = None
        if bindings:
            positions = {a: i for i, a in enumerate(residual.attributes)}
            slots = tuple(
                (True, bindings[a]) if a in bindings else (False, positions[a])
                for a in out_attrs
            )

            def merge(row: Row, _slots=slots) -> Row:
                return tuple(
                    payload if is_const else row[payload]
                    for is_const, payload in _slots
                )

        return _Compiled(True, residual, filters, bound, merge, out_attrs)

    def _residual_context(self) -> ExecutionContext:
        """The context the residual query is planned with: a caller-fixed
        attribute order loses its bound (eliminated) attributes."""
        ctx = self.context
        if ctx.attribute_order is not None and self.bindings:
            bound_attrs = {a for a, _v in self.bindings}
            stripped = tuple(
                a for a in ctx.attribute_order if a not in bound_attrs
            )
            ctx = ctx.replace(attribute_order=stripped)
        return ctx

    def _execution_database(self):
        """The catalog handed to *executors*.

        Always the context's database: executors consult it per
        relation and only for the exact catalogued object (identity),
        so sections created by equality pushdown build private indexes
        while untouched relations in the same residual query still hit
        the shared cache.
        """
        return self.context.database

    def _guard_plan(self, compiled: _Compiled) -> JoinPlan:
        """The degenerate plan when no residual query remains."""
        if compiled.satisfiable:
            reasons = [
                "every attribute is bound: the join reduces to per-relation "
                "membership guards; no executor runs"
            ]
        else:
            reasons = [
                "unsatisfiable: a bound tuple is absent from some relation "
                "(or a residual filter rejects a bound value); the result "
                "is empty and no executor runs"
            ]
        return JoinPlan(
            query=self.query,
            algorithm="none",
            attribute_order=(),
            backend=NO_BACKEND,
            reasons=tuple(reasons),
            bound=compiled.bound,
            filtered=self._filter_descriptions(),
            selected=self.selected,
        )

    def _filter_descriptions(self) -> tuple[tuple[str, str], ...]:
        return tuple(
            (predicate.attribute, predicate.describe())
            for predicate in self.predicates
        )

    def plan(self) -> JoinPlan:
        """Plan this query without running it (``repro.explain`` for the
        builder): the residual query's :class:`JoinPlan` with the bound
        attributes, residual filters, and projection recorded on it."""
        compiled = self._compile()
        if compiled.residual is None:
            # Covers both degenerate outcomes: all attributes bound
            # (guards only) and early-proven unsatisfiability.
            return self._guard_plan(compiled)
        plan = plan_join(
            compiled.residual,
            context=self._residual_context(),
            feedback_scope=feedback_scope(compiled.filters),
        )
        return _dc_replace(
            plan,
            bound=compiled.bound,
            filtered=self._filter_descriptions(),
            selected=self.selected,
        )

    def explain(self, analyze: bool = False):
        """The plan (``explain``), or a measured run (``EXPLAIN
        ANALYZE``).

        ``explain()`` is :meth:`plan` — nothing executes.
        ``explain(analyze=True)`` executes the query completely (rows
        are counted, never materialized) under a tracer and returns an
        :class:`~repro.observe.explain.ExplainAnalysis`: per-level
        estimated vs observed cardinalities beside the span timings.
        """
        if not analyze:
            return self.plan()
        from repro.observe.explain import analyze_query

        return analyze_query(self)

    def describe(self) -> str:
        """``plan().describe()`` — the CLI ``explain`` rendering."""
        return self.plan().describe()

    # -- execution ----------------------------------------------------------

    @property
    def output_attributes(self) -> tuple[str, ...]:
        """The schema of the rows this query yields."""
        if self.selected is not None:
            return self.selected
        return self.query.attributes

    def _project(self, rows: Iterator[Row]) -> Iterator[Row]:
        """Stream the projection: project each full row, emit first
        sightings only.  Memory is O(distinct projected rows)."""
        full = self.query.attributes
        if self.selected is None:
            return rows
        if set(self.selected) == set(full):
            # A permutation of the full schema: rows stay distinct.
            indices = tuple(full.index(a) for a in self.selected)
            return (tuple(row[i] for i in indices) for row in rows)
        indices = tuple(full.index(a) for a in self.selected)

        def dedup() -> Iterator[Row]:
            seen: set[Row] = set()
            for row in rows:
                key = tuple(row[i] for i in indices)
                if key not in seen:
                    seen.add(key)
                    yield key

        return dedup()

    def _full_rows(
        self, compiled: _Compiled, plan: JoinPlan | None = None
    ) -> Iterator[Row]:
        """Stream full-schema rows (bound values merged back in).

        ``plan`` lets a caller that already planned the residual query
        (``batches()`` resolving ``"auto"``) avoid planning it twice.
        """
        if not compiled.satisfiable:
            return iter(())
        if compiled.residual is None:
            constants = dict(compiled.bound)
            return iter(
                (tuple(constants[a] for a in compiled.output_attributes),)
            )
        ctx = self._residual_context()
        if ctx.parallel:
            rows: Iterator[Row] = _parallel.shard_join(
                compiled.residual, context=ctx, filters=compiled.filters
            )
            # The sharded driver opens its own execute span (the
            # per-shard spans nest under it) and feeds the metrics
            # registry itself — no wrapping here.
            if compiled.merge is not None:
                rows = map(compiled.merge, rows)
            return rows
        tracer = ctx.tracer
        # Planning and index builds are synchronous phases, so ambient
        # activation is safe here; the streaming execute span below uses
        # the tracer directly (a generator must not own a context-var).
        if plan is None:
            with tracer.activate() if tracer else _nullcontext():
                plan = plan_join(
                    compiled.residual,
                    context=ctx,
                    feedback_scope=feedback_scope(compiled.filters),
                )
        probe = None
        if (
            ctx.feedback is not None
            and plan.algorithm in NATIVE_TELEMETRY
        ):
            probe = TelemetryProbe(plan.attribute_order)
        with tracer.activate() if tracer else _nullcontext():
            executor = plan.executor(
                database=self._execution_database(),
                filters=compiled.filters,
                telemetry=probe,
            )
        rows = executor.iter_join()
        if probe is not None or ctx.metrics is not None:
            rows = recorded_rows(
                rows,
                probe,
                (
                    resolve_provider(ctx.database, ctx.stats)
                    if probe is not None
                    else None
                ),
                plan.query,
                feedback_scope(compiled.filters),
                metrics=ctx.metrics,
                database=ctx.database,
            )
        if compiled.merge is not None:
            rows = map(compiled.merge, rows)
        if tracer is not None:
            rows = traced_rows(tracer, rows, algorithm=plan.algorithm)
        return rows

    def stream(self) -> Iterator[Row]:
        """Stream result rows (schema: :attr:`output_attributes`).

        Planning — and all validation — happens in this call, not at
        first ``next()``.  With ``context.shards`` set, rows come from
        the sharded parallel driver; otherwise from the serial engine.
        """
        return self._project(self._full_rows(self._compile()))

    def run(self, name: str = "J") -> Relation:
        """Execute and materialize the result as a :class:`Relation`."""
        return Relation(name, self.output_attributes, self.stream())

    # -- aggregation & sampling ----------------------------------------------

    def _aggregate(self, spec: AggregateSpec, mode: str):
        """Dispatch one aggregate, under a ``fold`` span when traced.

        The span wraps whichever strategy :meth:`_aggregate_impl` picks,
        so a streamed fallback's ``execute`` span nests inside it.
        """
        tracer = self.context.tracer
        if tracer is None:
            return self._aggregate_impl(spec, mode)
        with tracer.span("fold", aggregate=mode):
            return self._aggregate_impl(spec, mode)

    def _aggregate_impl(self, spec: AggregateSpec, mode: str):
        """Run one aggregate spec over this query's result.

        Dispatch, in order of preference:

        1. **Folded** into the level loops of a native executor
           (:data:`~repro.engine.executors.NATIVE_FOLD`) — no rows are
           materialized and prunable subtrees contribute factorized
           counts in O(1).  Requires: no projection, no feedback loop,
           serial execution, and no aggregate input read from a bound
           (constant) attribute.
        2. **Sharded**: per-shard partial states computed by the
           parallel driver's workers and merged by the spec's picklable
           combiner (``context.shards`` set, same conditions otherwise).
        3. **Streamed**: fold the ordinary (projected, merged, possibly
           telemetry-recorded) row stream — the universal fallback,
           exact for every algorithm and option combination.  With the
           feedback loop enabled this path is chosen *deliberately*:
           the observed stream records full per-level telemetry, so
           aggregate executions keep feeding the feedback store the
           same cardinalities enumeration would.
        """
        missing = [
            a for a in spec.needs if a not in self.output_attributes
        ]
        if missing:
            raise QueryError(
                f"aggregate reads attributes {missing!r} that are not in "
                f"the output schema {self.output_attributes!r}"
            )
        compiled = self._compile()
        if not compiled.satisfiable:
            return spec.finish(spec.start())
        if compiled.residual is None:
            # Fully bound: at most one constants row survives the guards.
            return fold_rows(self.stream(), spec, self.output_attributes)
        ctx = self._residual_context()
        bound_attrs = {a for a, _v in compiled.bound}
        foldable = (
            self.selected is None
            and ctx.feedback is None
            and not (set(spec.needs) & bound_attrs)
        )
        if ctx.parallel:
            if foldable:
                state = _parallel.shard_fold(
                    compiled.residual,
                    spec,
                    context=ctx,
                    filters=compiled.filters,
                )
                return spec.finish(state)
            return fold_rows(self.stream(), spec, self.output_attributes)
        if foldable:
            plan = plan_join(
                compiled.residual,
                context=ctx,
                feedback_scope=feedback_scope(compiled.filters),
            )
            if plan.algorithm in NATIVE_FOLD:
                plan = _dc_replace(plan, aggregate=mode)
                executor = plan.executor(
                    database=self._execution_database(),
                    filters=compiled.filters,
                )
                folder = Folder(spec, plan.attribute_order)
                executor.fold(folder)
                return folder.result()
            # Blocking specialists have no level loops to fold into;
            # stream their rows (still nothing is materialized at once).
            return fold_rows(
                self._full_rows(compiled, plan), spec, self.query.attributes
            )
        return fold_rows(self.stream(), spec, self.output_attributes)

    def count(self) -> int:
        """Number of result rows — *without* enumerating them when the
        plan allows: the count is folded into the join's level loops and
        prunable subtrees are counted in O(1) (see
        :mod:`repro.aggregate.fold`).  Exactly
        ``sum(1 for _ in self.stream())``, at a fraction of the work."""
        return self._aggregate(Count(), "count")

    def sum(self, attribute: str):
        """Sum of ``attribute`` over the result rows (0 when empty)."""
        return self._aggregate(Sum(attribute), "sum")

    def min(self, attribute: str):
        """Minimum of ``attribute`` over the result (None when empty)."""
        return self._aggregate(Min(attribute), "min")

    def max(self, attribute: str):
        """Maximum of ``attribute`` over the result (None when empty)."""
        return self._aggregate(Max(attribute), "max")

    def avg(self, attribute: str):
        """Mean of ``attribute`` over the result (None when empty)."""
        return self._aggregate(Avg(attribute), "avg")

    def count_distinct(self, attribute: str) -> int:
        """Number of distinct ``attribute`` values in the result (0 when
        empty).  Multiplicity-insensitive, so subtrees below the
        attribute's level are pruned without counting completions."""
        return self._aggregate(CountDistinct(attribute), "count_distinct")

    def group_by(self, *attributes: str) -> "GroupedQuery":
        """Group the result by ``attributes``; finish with
        :meth:`GroupedQuery.agg` (or :meth:`GroupedQuery.count`).

        Grouping attributes must be in the output schema.  Keys in the
        returned mapping are always tuples, even for a single grouping
        attribute."""
        if not attributes:
            raise QueryError("group_by needs at least one attribute")
        for attribute in attributes:
            self._require_attribute(attribute, "group_by")
        return GroupedQuery(self, tuple(attributes))

    def sample(self, k: int, seed: int | None = None) -> list[Row]:
        """``min(k, count)`` distinct uniform result rows, never
        materializing the result: rows are drawn by AGM-weighted
        rejection descent (:mod:`repro.aggregate.sampling`), uniform
        over the filtered join.  Deterministic for a fixed ``seed``.

        With a projection (``select``), uniformity is over the distinct
        projected rows, drawn by seeded reservoir sampling over the
        deduplicated stream.  With ``context.shards`` set the sampler
        still runs serially — a shard-local sample is not a uniform
        global one, and the descent touches far less than one shard's
        enumeration anyway."""
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise QueryError(
                f"sample size must be a non-negative int, got {k!r}"
            )
        compiled = self._compile()
        if k == 0 or not compiled.satisfiable:
            return []
        if compiled.residual is None or self.selected is not None:
            return reservoir_sample(self.stream(), k, seed)
        ctx = self._residual_context()
        tracer = ctx.tracer
        with (
            tracer.span("sample", k=k) if tracer else _nullcontext()
        ), (tracer.activate() if tracer else _nullcontext()):
            rows = sample_query(
                compiled.residual,
                k,
                seed,
                backend=ctx.backend,
                database=self._execution_database(),
                filters=compiled.filters,
            )
        if compiled.merge is not None:
            rows = [compiled.merge(row) for row in rows]
        return rows

    def batches(self, size: int | None = None) -> Iterator[list[Row]]:
        """Stream the result in fixed-size row batches.

        ``size`` defaults to the context's ``batch_size`` (``"auto"``
        resolves from the residual query's AGM estimate in serial mode),
        then to the context's ``ShardSpec.batch_size`` when one is set,
        and finally to :data:`~repro.engine.parallel.DEFAULT_BATCH_SIZE`.
        """
        compiled = self._compile()
        ctx = self.context
        plan = None
        if compiled.residual is not None and not ctx.parallel:
            plan = plan_join(
                compiled.residual,
                context=self._residual_context(),
                feedback_scope=feedback_scope(compiled.filters),
            )
        resolved = size
        if resolved is None and ctx.batch_size is not None:
            if ctx.batch_size == "auto":
                resolved = plan.batch_size if plan is not None else None
            else:
                resolved = require_positive_int(
                    ctx.batch_size, "batch_size", " or 'auto'"
                )
        spec_batch = getattr(ctx.shards, "batch_size", None)
        if resolved is None and spec_batch is not None:
            if spec_batch == "auto":
                resolved = plan.batch_size if plan is not None else None
            else:
                resolved = require_positive_int(
                    spec_batch, "batch_size", " or 'auto'"
                )
        if resolved is None:
            resolved = _parallel.DEFAULT_BATCH_SIZE
        return _parallel.batches(
            self._project(self._full_rows(compiled, plan)), resolved
        )

    def astream(self, batch_size: int | None = None):
        """Async iteration for event-loop servers (``async for row in
        q.astream()``): the blocking stream runs on worker threads and
        rows reach the loop ``batch_size`` at a time (resolved exactly
        as :meth:`batches` resolves it, including ``"auto"``).
        Planning and validation happen in this synchronous call."""
        return drain_async(self.batches(batch_size))

    def prepare(self) -> "PreparedQuery":
        """Freeze this query into a :class:`~repro.query.prepared.
        PreparedQuery`: the plan is fixed and every index it needs is
        built now (through the context database's bounded cache when the
        relations are catalogued), so repeated ``run()`` / ``stream()``
        calls perform zero planning and zero index builds."""
        from repro.query.prepared import PreparedQuery

        return PreparedQuery(self)

    def __repr__(self) -> str:
        parts = [repr(self.query)]
        if self.bindings:
            parts.append(
                "where " + ", ".join(f"{a}={v!r}" for a, v in self.bindings)
            )
        parts.extend(p.describe() for p in self.predicates)
        if self.selected is not None:
            parts.append("select " + (", ".join(self.selected) or "()"))
        return f"Q<{'; '.join(parts)}>"


class GroupedQuery:
    """A query grouped by key attributes, awaiting its aggregates.

    Returned by :meth:`QueryBuilder.group_by`; terminal methods run the
    query.  Immutable and reusable like the builder itself.
    """

    __slots__ = ("_builder", "_keys")

    def __init__(
        self, builder: QueryBuilder, keys: tuple[str, ...]
    ) -> None:
        object.__setattr__(self, "_builder", builder)
        object.__setattr__(self, "_keys", keys)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("GroupedQuery instances are immutable")

    @property
    def keys(self) -> tuple[str, ...]:
        """The grouping attributes, in grouping order."""
        return self._keys

    def agg(self, **aggregates) -> dict:
        """Run the grouped aggregates: ``{key tuple: {name: value}}``.

        Each keyword names an output column; values are aggregate specs
        (:class:`~repro.aggregate.specs.Count` and friends), the string
        ``"count"``, or ``(kind, attribute)`` shorthand pairs with kind
        in ``sum``/``min``/``max``.  Keys come out sorted.
        """
        if not aggregates:
            raise QueryError("agg() needs at least one named aggregate")
        spec = grouped(self._keys, aggregates)
        return self._builder._aggregate(spec, "group_by")

    def count(self) -> dict:
        """Rows per group: ``{key tuple: count}`` (keys sorted)."""
        spec = grouped(self._keys, {"count": Count()})
        result = self._builder._aggregate(spec, "group_by")
        return {key: values["count"] for key, values in result.items()}

    def __repr__(self) -> str:
        return f"{self._builder!r}.group_by({', '.join(self._keys)})"
