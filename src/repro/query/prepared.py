"""Prepared queries: plan once, index once, run many times.

The ROADMAP's "cross-query warmup hints" item, realized at the query
level: :meth:`QueryBuilder.prepare` (or ``Database.prepare``) freezes a
builder into a :class:`PreparedQuery` whose

* **plan** is computed exactly once (algorithm, attribute order,
  backend, pushed bindings — everything ``explain`` shows), and
* **indexes** are built exactly once, at prepare time — through the
  context database's bounded GreedyDual cache when the relations are
  catalogued (so other queries share them), privately otherwise.

Each ``run()`` / ``stream()`` then re-drives the same executor: zero
planning, zero index builds — on a warm catalog, ``Database.
cache_info()`` shows no new misses across any number of runs.

:meth:`PreparedQuery.bind` rebinds the equality parameters (``where``
values) *without re-planning*: the residual query has the same shape for
any parameter values, so the frozen algorithm / order / backend carry
over and only the sections (and their private indexes) are rebuilt —
the classical prepared-statement contract.

Sharded execution (a context with ``shards`` set) cannot reuse one
in-process executor — shard workers build their own restricted indexes
— so a parallel prepared query delegates each run to the sharded
driver; the frozen *plan* is still reused for ``describe()`` and shard
sizing.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import replace as _dc_replace

from repro.aggregate.fold import Folder, fold_rows
from repro.aggregate.specs import Avg, Count, CountDistinct, Max, Min, Sum
from repro.engine import parallel as _parallel
from repro.engine.executors import NATIVE_FOLD, NATIVE_TELEMETRY
from repro.engine.planner import JoinPlan
from repro.errors import QueryError
from repro.feedback.telemetry import (
    TelemetryProbe,
    estimate_divergence,
    feedback_scope,
    level_estimates,
)
from repro.query.builder import GroupedQuery, QueryBuilder, drain_async
from repro.relations.relation import Relation, Row, Value
from repro.stats.provider import resolve_provider

__all__ = ["PreparedQuery"]


class PreparedQuery:
    """A frozen, pre-indexed query ready for repeated execution.

    Build via :meth:`QueryBuilder.prepare` or ``Database.prepare`` —
    the constructor is internal.  Instances are immutable; :meth:`bind`
    derives a new prepared query sharing the frozen plan decisions.
    """

    __slots__ = (
        "_builder",
        "_compiled",
        "_plan",
        "_executor",
        "_probe",
        "_replans",
    )

    def __init__(
        self, builder: QueryBuilder, _reuse_plan: JoinPlan | None = None
    ) -> None:
        compiled = builder._compile()
        if _reuse_plan is None:
            plan = builder.plan()
        elif compiled.residual is None:
            plan = builder._guard_plan(compiled)
        elif _reuse_plan.algorithm == "none":
            # The original prepare was degenerate (a guard proved it
            # empty before planning), so there is no real plan to
            # reuse; the rebound values resurrected a residual query —
            # plan it now.
            plan = builder.plan()
        else:
            # Rebinding: same residual shape, new parameter values — the
            # frozen algorithm / order / backend stay valid, only the
            # data (and the lazily cached AGM bound) changed.
            plan = _dc_replace(
                _reuse_plan,
                query=compiled.residual,
                bound=compiled.bound,
                _bound=None,
            )
        executor = None
        probe = None
        if (
            compiled.satisfiable
            and compiled.residual is not None
            and not builder.context.parallel
        ):
            if (
                builder.context.feedback is not None
                and plan.algorithm in NATIVE_TELEMETRY
            ):
                probe = TelemetryProbe(plan.attribute_order)
            executor = plan.executor(
                database=builder._execution_database(),
                filters=compiled.filters,
                telemetry=probe,
            )
        object.__setattr__(self, "_builder", builder)
        object.__setattr__(self, "_compiled", compiled)
        object.__setattr__(self, "_plan", plan)
        object.__setattr__(self, "_executor", executor)
        object.__setattr__(self, "_probe", probe)
        object.__setattr__(self, "_replans", 0)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("PreparedQuery instances are immutable")

    # -- inspection ---------------------------------------------------------

    @property
    def plan(self) -> JoinPlan:
        """The frozen :class:`~repro.engine.planner.JoinPlan`."""
        return self._plan

    @property
    def query(self) -> QueryBuilder:
        """The builder this prepared query froze."""
        return self._builder

    @property
    def output_attributes(self) -> tuple[str, ...]:
        """The schema of the rows :meth:`stream` yields."""
        return self._builder.output_attributes

    @property
    def replans(self) -> int:
        """How many times runtime feedback re-planned this query.

        Always 0 without a feedback context.  A re-plan happens after a
        completed run whose observed per-level cardinalities diverged
        from the frozen plan's estimates by more than the configured
        ``replan_tolerance`` *and* the observation-informed planner then
        chose a different plan; the refreshed plan (and its executor)
        replace the frozen ones for subsequent runs.
        """
        return self._replans

    def describe(self) -> str:
        """The frozen plan's ``explain`` rendering."""
        return self._plan.describe()

    # -- execution ----------------------------------------------------------

    def stream(self) -> Iterator[Row]:
        """Stream result rows from the pre-built executor.

        No planning and no index builds happen here — every run walks
        the indexes frozen at prepare time.  (With a parallel context,
        runs delegate to the sharded driver instead; see the module
        docstring.)
        """
        compiled = self._compiled
        if not compiled.satisfiable:
            return iter(())
        if compiled.residual is None:
            constants = dict(compiled.bound)
            rows: Iterator[Row] = iter(
                (tuple(constants[a] for a in compiled.output_attributes),)
            )
            return self._builder._project(rows)
        if self._executor is None:
            return self._builder.stream()  # parallel context: shard per run
        if self._probe is not None:
            rows = self._observed_rows()
        else:
            rows = self._executor.iter_join()
        if compiled.merge is not None:
            rows = map(compiled.merge, rows)
        return self._builder._project(rows)

    def _observed_rows(self) -> Iterator[Row]:
        """One measured run of the prepared executor.

        On natural exhaustion the telemetry is recorded into the
        context's statistics provider and checked against the frozen
        plan's estimates; past the tolerance, the query re-plans with
        the fresh observations (see :attr:`replans`).  The probe is
        shared across runs (reset here), so concurrent streams of one
        prepared query must not overlap under feedback.
        """
        from time import perf_counter

        probe = self._probe
        probe.reset()
        started = perf_counter()
        count = 0
        for row in self._executor.iter_join():
            count += 1
            yield row
        telemetry = probe.snapshot(
            count, perf_counter() - started, complete=True
        )
        context = self._builder.context
        provider = resolve_provider(context.database, context.stats)
        provider.record_levels(
            self._plan.query,
            telemetry,
            feedback_scope(self._compiled.filters),
        )
        if context.metrics is not None:
            context.metrics.record_run(telemetry)
            if context.database is not None:
                context.metrics.record_cache(context.database.cache_info())
        self._maybe_replan(telemetry)

    def _level_estimates(self) -> tuple[tuple[str, float], ...]:
        """The frozen plan's per-level partial-size estimates (see
        :func:`~repro.feedback.telemetry.level_estimates` — shared with
        ``EXPLAIN ANALYZE``'s estimated-vs-observed table)."""
        return level_estimates(self._plan.statistics)

    def _maybe_replan(self, telemetry) -> None:
        estimates = self._level_estimates()
        if not estimates:
            return
        context = self._builder.context
        tolerance = context.feedback.replan_tolerance
        if estimate_divergence(estimates, telemetry) <= tolerance:
            return
        tracer = context.tracer
        if tracer is None:
            self._replan()
            return
        with tracer.span("replan") as span, tracer.activate():
            before = self._replans
            self._replan()
            span.meta["rebuilt"] = self._replans > before

    def _replan(self) -> None:
        plan = self._builder.plan()
        if (
            plan.algorithm == self._plan.algorithm
            and plan.attribute_order == self._plan.attribute_order
            and plan.backend == self._plan.backend
            and plan.relation_backends == self._plan.relation_backends
        ):
            if plan.statistics != self._plan.statistics:
                # Same execution strategy, fresher evidence (e.g. the
                # pinned order's estimates are now the measured counts):
                # adopt the plan, keep the executor — repeated runs then
                # observe no divergence and stop re-planning.
                object.__setattr__(self, "_plan", plan)
            return
        # Anything execution-relevant changed — order, algorithm, or a
        # backend choice flipped by the fresh evidence: rebuild.
        probe = None
        if plan.algorithm in NATIVE_TELEMETRY:
            probe = TelemetryProbe(plan.attribute_order)
        executor = plan.executor(
            database=self._builder._execution_database(),
            filters=self._compiled.filters,
            telemetry=probe,
        )
        object.__setattr__(self, "_plan", plan)
        object.__setattr__(self, "_executor", executor)
        object.__setattr__(self, "_probe", probe)
        object.__setattr__(self, "_replans", self._replans + 1)
        metrics = self._builder.context.metrics
        if metrics is not None:
            metrics.record_replan()

    def run(self, name: str = "J") -> Relation:
        """Execute and materialize the result as a :class:`Relation`."""
        return Relation(name, self.output_attributes, self.stream())

    # -- aggregation & sampling ----------------------------------------------

    def _aggregate(self, spec, mode: str):
        """One aggregate over the prepared query — no re-planning, ever.

        The frozen executor's level loops fold the spec directly when
        the plan is native (:data:`~repro.engine.executors.NATIVE_FOLD`),
        reusing the indexes built at prepare time; rebinding via
        :meth:`bind` keeps this path (the rebound prepared query carries
        its own executor over the re-sectioned relations).  Projection,
        feedback telemetry, or aggregate inputs outside the residual
        order fall back to folding the prepared row stream; a parallel
        context delegates to the builder (whose sharded driver merges
        per-shard partial states).
        """
        missing = [a for a in spec.needs if a not in self.output_attributes]
        if missing:
            raise QueryError(
                f"aggregate reads attributes {missing!r} that are not in "
                f"the output schema {self.output_attributes!r}"
            )
        compiled = self._compiled
        if not compiled.satisfiable:
            return spec.finish(spec.start())
        if self._executor is None and compiled.residual is not None:
            return self._builder._aggregate(spec, mode)  # parallel context
        if (
            self._executor is not None
            and self._probe is None
            and self._builder.selected is None
            and self._plan.algorithm in NATIVE_FOLD
            and set(spec.needs) <= set(self._plan.attribute_order)
        ):
            folder = Folder(spec, self._plan.attribute_order)
            self._executor.fold(folder)
            return folder.result()
        return fold_rows(self.stream(), spec, self.output_attributes)

    def count(self) -> int:
        """Number of result rows, folded into the frozen executor's
        level loops when the plan allows (no enumeration; see
        :meth:`QueryBuilder.count`), streamed otherwise."""
        return self._aggregate(Count(), "count")

    def sum(self, attribute: str):
        """Sum of ``attribute`` over the result rows (0 when empty)."""
        return self._aggregate(Sum(attribute), "sum")

    def min(self, attribute: str):
        """Minimum of ``attribute`` over the result (None when empty)."""
        return self._aggregate(Min(attribute), "min")

    def max(self, attribute: str):
        """Maximum of ``attribute`` over the result (None when empty)."""
        return self._aggregate(Max(attribute), "max")

    def avg(self, attribute: str):
        """Mean of ``attribute`` over the result (None when empty)."""
        return self._aggregate(Avg(attribute), "avg")

    def count_distinct(self, attribute: str) -> int:
        """Number of distinct ``attribute`` values in the result (0 when
        empty), same no-re-planning contract as :meth:`count`."""
        return self._aggregate(CountDistinct(attribute), "count_distinct")

    def group_by(self, *attributes: str) -> GroupedQuery:
        """Group the prepared result by ``attributes``; terminal methods
        on the returned :class:`~repro.query.builder.GroupedQuery` run
        against this prepared query (same no-re-planning contract as
        :meth:`count`)."""
        self._builder.group_by(*attributes)  # reuse the builder's checks
        return GroupedQuery(self, tuple(attributes))

    def sample(self, k: int, seed: int | None = None) -> list[Row]:
        """``min(k, count)`` distinct uniform result rows (see
        :meth:`QueryBuilder.sample`).  The sampler owns its descent and
        builds trie indexes through the context database's cache, so
        delegation costs no planning."""
        return self._builder.sample(k, seed)

    def batches(self, size: int | None = None) -> Iterator[list[Row]]:
        """Stream the result in fixed-size row batches."""
        resolved = size
        if resolved is None and isinstance(
            self._builder.context.batch_size, int
        ):
            resolved = self._builder.context.batch_size
        if resolved is None and self._plan.batch_size is not None:
            resolved = self._plan.batch_size
        if resolved is None:
            resolved = _parallel.DEFAULT_BATCH_SIZE
        return _parallel.batches(self.stream(), resolved)

    def astream(self, batch_size: int | None = None):
        """Async iteration over the prepared executor (see
        :meth:`QueryBuilder.astream`)."""
        return drain_async(self.batches(batch_size))

    # -- rebinding ----------------------------------------------------------

    def bind(self, **values: Value) -> "PreparedQuery":
        """A new prepared query with equality parameters rebound.

        Every keyword must name an attribute the original ``where``
        clauses bound — the residual query then has the *same shape*
        (same attributes, same relations), so the frozen plan is reused
        verbatim and only the relation sections (plus their private
        indexes) are rebuilt.  No statistics are rescanned and no order
        descent runs.
        """
        current = dict(self._builder.bindings)
        for attribute, value in values.items():
            if attribute not in current:
                raise QueryError(
                    f"bind() can only rebind prepared parameters; "
                    f"{attribute!r} is not among the bound attributes "
                    f"{tuple(current)!r}"
                )
            current[attribute] = value
        rebound = QueryBuilder(
            self._builder.query,
            context=self._builder.context,
            bindings=tuple(
                (a, current[a])
                for a in self._builder.query.attributes
                if a in current
            ),
            predicates=self._builder.predicates,
            selected=self._builder.selected,
        )
        return PreparedQuery(rebound, _reuse_plan=self._plan)

    def __repr__(self) -> str:
        return f"PreparedQuery({self._builder!r}, plan={self._plan.algorithm})"
