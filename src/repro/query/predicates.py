"""Residual predicates: the selection clauses the engine cannot eliminate.

An *equality* clause (``where(A=1)``) is pushed all the way into the
plan — the bound attribute's level disappears from the search via
relation sectioning (see :mod:`repro.query.builder`).  Everything else —
set membership (``where_in``), arbitrary per-attribute callables
(``filter``) — stays a *residual predicate*: a single-attribute test the
executors evaluate **at the level that binds the attribute**, pruning
whole subtrees before any deeper intersection work happens (for the
attribute-at-a-time executors) or filtering emitted rows (for the
blocking specialists).

Predicates are small declarative objects, not bare lambdas, for two
reasons: they render themselves in ``JoinPlan.describe()`` / the CLI's
``explain``, and :class:`ValueIn` pickles, so membership pushdown
survives the trip to process-pool shard workers
(:mod:`repro.engine.parallel`).  A :class:`Callback` wrapping a lambda
does not pickle — the sharded driver then falls back to thread mode,
exactly as it does for unpicklable values.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import QueryError
from repro.relations.relation import Value

__all__ = ["Callback", "ResidualPredicate", "ValueIn", "combine"]


class ResidualPredicate:
    """One single-attribute test, attached to attribute :attr:`attribute`.

    Subclasses implement ``__call__(value) -> bool`` and
    ``describe() -> str``; instances are immutable value objects.
    """

    __slots__ = ("attribute",)

    def __init__(self, attribute: str) -> None:
        object.__setattr__(self, "attribute", attribute)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(
            f"{type(self).__name__} instances are immutable"
        )

    def __call__(self, value: Value) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


class ValueIn(ResidualPredicate):
    """Set membership: ``attribute in values`` (the ``where_in`` clause).

    The value set is frozen at construction; the rendered description is
    sorted by ``repr`` so ``describe()`` — and therefore ``explain``
    output and golden tests — is deterministic regardless of insertion
    order.
    """

    __slots__ = ("values",)

    def __init__(self, attribute: str, values: Iterable[Value]) -> None:
        super().__init__(attribute)
        object.__setattr__(self, "values", frozenset(values))

    def __call__(self, value: Value) -> bool:
        return value in self.values

    def __reduce__(self):
        return (ValueIn, (self.attribute, self.values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueIn):
            return NotImplemented
        return (self.attribute, self.values) == (other.attribute, other.values)

    def __hash__(self) -> int:
        return hash((ValueIn, self.attribute, self.values))

    def describe(self) -> str:
        inner = ", ".join(sorted((repr(v) for v in self.values)))
        return f"{self.attribute} in {{{inner}}}"


class Callback(ResidualPredicate):
    """An arbitrary per-attribute test: ``predicate(value) -> bool``.

    ``label`` names the predicate in ``explain`` output (defaults to the
    callable's ``__name__``); the callable itself is opaque to the
    planner, which therefore cannot push it below the attribute's level.
    """

    __slots__ = ("predicate", "label")

    def __init__(
        self,
        attribute: str,
        predicate: Callable[[Value], bool],
        label: str | None = None,
    ) -> None:
        if not callable(predicate):
            raise QueryError(
                f"filter predicate for {attribute!r} is not callable: "
                f"{predicate!r}"
            )
        super().__init__(attribute)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(
            self,
            "label",
            label
            if label is not None
            else getattr(predicate, "__name__", "<predicate>"),
        )

    def __call__(self, value: Value) -> bool:
        return bool(self.predicate(value))

    def __reduce__(self):
        return (Callback, (self.attribute, self.predicate, self.label))

    def describe(self) -> str:
        return f"{self.attribute} satisfies {self.label}"


class _And(ResidualPredicate):
    """Conjunction of several predicates on the same attribute."""

    __slots__ = ("parts",)

    def __init__(
        self, attribute: str, parts: tuple[ResidualPredicate, ...]
    ) -> None:
        super().__init__(attribute)
        object.__setattr__(self, "parts", parts)

    def __call__(self, value: Value) -> bool:
        return all(part(value) for part in self.parts)

    def __reduce__(self):
        return (_And, (self.attribute, self.parts))

    def describe(self) -> str:
        return " and ".join(part.describe() for part in self.parts)


def combine(
    attribute: str, predicates: Iterable[ResidualPredicate]
) -> ResidualPredicate:
    """Conjunction of every predicate attached to one attribute."""
    parts = tuple(predicates)
    if len(parts) == 1:
        return parts[0]
    return _And(attribute, parts)
