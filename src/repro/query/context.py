"""ExecutionContext: the single carrier of execution options.

Before this object existed, every entry point in :mod:`repro.api` (and
the CLI, and :mod:`repro.engine.parallel`) re-declared the same keyword
list — ``algorithm``, ``cover``, ``attribute_order``, ``backend``,
``database``, ``shards``, ``batch_size``, stats configuration — and the
lists drifted apart with every PR.  :class:`ExecutionContext` replaces
that kwargs plumbing with one immutable value object: the fluent builder
(:mod:`repro.query.builder`) carries one, the planner unpacks one
(``plan_join(query, context=ctx)``), the parallel drivers accept one,
and the legacy ``repro.api`` functions construct one from their frozen
keyword signatures.

A context answers *how* to execute — it says nothing about *what* to
compute (relations, predicates, projections live on the builder).  It is
frozen and hashable so it can key caches, and :meth:`replace` derives
variants without mutation::

    ctx = ExecutionContext(database=db, shards="auto")
    serial = ctx.replace(shards=None)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import PlanError
from repro.feedback.config import FeedbackConfig
from repro.hypergraph.covers import FractionalCover
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracing import Tracer
from repro.query.shards import ShardSpec
from repro.relations.database import Database

__all__ = ["ExecutionContext"]

#: Shard execution modes a context accepts (mirrors
#: :data:`repro.engine.parallel.SHARD_MODES`; duplicated as a literal so
#: this module stays import-light and cycle-free under the engine).
_MODES = ("auto", "process", "thread", "serial")


@dataclass(frozen=True)
class ExecutionContext:
    """Every execution option the engine consumes, in one frozen object.

    Fields mirror the planner's and parallel drivers' parameters; the
    defaults reproduce the behavior of calling ``repro.join`` with no
    keywords.  ``None`` consistently means "the engine decides" (or, for
    ``shards``/``batch_size``, "stay serial / row-at-a-time").
    """

    #: Catalog supplying cached indexes and statistics (Remark 5.2's
    #: ahead-of-time indexing); ``None`` plans and runs standalone.
    database: Database | None = None
    #: A :class:`~repro.stats.provider.StatsProvider` (or a
    #: :class:`~repro.stats.provider.StatsConfig`, which the planner
    #: wraps) pinning how plan statistics are gathered.
    stats: object | None = None
    #: Algorithm name or ``"auto"`` (the planner's shape dispatch).
    algorithm: str = "auto"
    #: Optional fractional cover for the cover-driven algorithms.
    cover: FractionalCover | None = None
    #: Optional global attribute order (order-sensitive algorithms only).
    attribute_order: tuple[str, ...] | None = None
    #: Index backend kind, or ``None`` for the planner's choice.
    backend: str | None = None
    #: How to shard: a :class:`~repro.query.shards.ShardSpec`, or
    #: ``None`` for serial execution.  Bare positive ints and ``"auto"``
    #: are the deprecated spellings, auto-coerced to a plain spec
    #: (``ShardSpec.coerce``) so no caller breaks.
    shards: ShardSpec | int | str | None = None
    #: Rows per batch: positive int, ``"auto"``, or ``None`` for
    #: row-at-a-time delivery.
    batch_size: int | str | None = None
    #: Shard execution mode (``"auto"``/``"process"``/``"thread"``/
    #: ``"serial"``); consulted only when :attr:`shards` is set.
    mode: str = "auto"
    #: Worker-pool width for sharded modes; ``None`` = one per shard.
    workers: int | None = None
    #: A :class:`~repro.feedback.config.FeedbackConfig` switching on the
    #: runtime feedback loop — executions record per-level and per-shard
    #: telemetry into the statistics provider, the planner prefers
    #: observed over sampled statistics, shards that ran hot are split
    #: on the next run, and prepared queries re-plan on divergence.
    #: ``None`` (the default) disables all of it: no probes are built
    #: and the executors run their uninstrumented paths.
    feedback: FeedbackConfig | None = None
    #: A :class:`~repro.observe.tracing.Tracer` collecting nested timed
    #: spans for every execution under this context (plan,
    #: stats-profile, index-build, execute / per-shard, fold, sample,
    #: replan).  ``None`` (the default): no spans, zero overhead.
    tracer: Tracer | None = None
    #: A :class:`~repro.observe.metrics.MetricsRegistry` that measured
    #: executions feed (rows, probes, cache counters, shard imbalance,
    #: replans).  ``None`` (the default): nothing is recorded.
    metrics: MetricsRegistry | None = None
    #: The scheduler sharded execution dispatches through — anything
    #: implementing the :class:`~repro.distributed.Scheduler` protocol
    #: (``run_join(job)`` / ``run_fold(job, spec)``).  ``None`` (the
    #: default) uses the local pool, exactly as before this field
    #: existed; a :class:`~repro.distributed.DispatchScheduler` promotes
    #: the same query to a remote worker fleet.
    scheduler: object | None = None

    def __post_init__(self) -> None:
        if self.attribute_order is not None:
            object.__setattr__(
                self, "attribute_order", tuple(self.attribute_order)
            )
        # Normalize every accepted shards= spelling into a ShardSpec (or
        # None) once, here, so the planner and drivers see one type.
        object.__setattr__(self, "shards", ShardSpec.coerce(self.shards))
        if self.scheduler is not None and not hasattr(
            self.scheduler, "run_join"
        ):
            raise PlanError(
                f"scheduler must implement the Scheduler protocol "
                f"(run_join/run_fold), got {self.scheduler!r}"
            )
        if self.mode not in _MODES:
            raise PlanError(
                f"unknown shard mode {self.mode!r}; choose one of {_MODES}"
            )
        if self.feedback is True:
            # ``feedback=True`` is a natural spelling; normalize it to
            # the default config instead of rejecting it.
            object.__setattr__(self, "feedback", FeedbackConfig())
        if self.feedback is not None and not isinstance(
            self.feedback, FeedbackConfig
        ):
            raise PlanError(
                f"feedback must be a FeedbackConfig (or True/None), "
                f"got {self.feedback!r}"
            )
        if self.tracer is True:
            # ``tracer=True`` is a natural spelling, like feedback.
            object.__setattr__(self, "tracer", Tracer())
        if self.tracer is not None and not isinstance(self.tracer, Tracer):
            raise PlanError(
                f"tracer must be a repro.Tracer (or True/None), "
                f"got {self.tracer!r}"
            )
        if self.metrics is True:
            object.__setattr__(self, "metrics", MetricsRegistry())
        if self.metrics is not None and not isinstance(
            self.metrics, MetricsRegistry
        ):
            raise PlanError(
                f"metrics must be a repro.MetricsRegistry (or True/None), "
                f"got {self.metrics!r}"
            )

    def replace(self, **changes) -> "ExecutionContext":
        """A copy of this context with ``changes`` applied (the fluent
        builder's ``using(...)`` delegates here)."""
        return dataclasses.replace(self, **changes)

    @property
    def parallel(self) -> bool:
        """True when execution will route through the sharded driver."""
        return self.shards is not None

    def describe(self) -> str:
        """One line per non-default option (for logs and ``explain``)."""
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value!r}")
        return "ExecutionContext(" + ", ".join(parts) + ")"
