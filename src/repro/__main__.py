"""Command-line interface: worst-case optimal joins over CSV files.

Usage::

    python -m repro join R.csv S.csv T.csv [--algorithm nprr] [-o out.csv]
    python -m repro join R.csv S.csv T.csv --stream
    python -m repro join R.csv S.csv T.csv --shards 4 --batch 500
    python -m repro join R.csv S.csv T.csv --workers 127.0.0.1:7102,127.0.0.1:7103 \\
        --steal --predictive
    python -m repro join R.csv S.csv T.csv --where A=1 --where-in B=2,3 \\
        --select A,C
    python -m repro join R.csv S.csv T.csv --feedback
    python -m repro join R.csv S.csv T.csv --count
    python -m repro join R.csv S.csv T.csv --sample 5 --seed 7
    python -m repro join R.csv S.csv T.csv --trace trace.json \\
        --metrics metrics.prom
    python -m repro bound R.csv S.csv T.csv
    python -m repro explain R.csv S.csv T.csv [--algorithm leapfrog]
    python -m repro explain R.csv S.csv T.csv --where A=1
    python -m repro explain R.csv S.csv T.csv --analyze
    python -m repro repl R.csv S.csv T.csv
    python -m repro serve R.csv S.csv T.csv --port 7712 --row-budget 1000000
    python -m repro worker --port 7102
    python -m repro --version

* ``join``    — compute the natural join (attributes join by column name);
                with ``--stream``, rows are printed as the engine finds
                them instead of being materialized and sorted; with
                ``--shards K``, the first join attribute is partitioned
                into K work-balanced shards run on a worker pool; with
                ``--batch N``, rows are written in batches of N (implies
                ``--stream`` delivery).  ``--where A=1`` binds an
                attribute to a constant (pushed into the plan: the
                attribute's level is eliminated), ``--where-in B=2,3``
                keeps rows whose value is in the set (a per-level filter
                inside the executors), and ``--select A,C`` projects the
                streamed output (deduplicated on the fly).  ``--count``
                prints only the number of result rows — folded into the
                join's level loops, never enumerating the result (with
                ``--shards`` the workers return partial counts) — and
                ``--sample K`` prints K distinct uniform result rows
                drawn by AGM-weighted rejection (``--seed S`` makes the
                draw deterministic).  ``--workers host:port,...``
                dispatches the shards to a fleet of ``worker``
                processes instead of the local pool; ``--steal``
                enables within-run work stealing and ``--predictive``
                pre-splits hub-heavy shards at plan time
* ``bound``   — print the AGM output bound, the optimal fractional cover,
                and the dual packing certificate
* ``explain`` — print the engine's join plan (algorithm, attribute order,
                index backend, AGM estimate — plus bound attributes and
                residual filters when ``--where`` / ``--where-in`` /
                ``--select`` are given) and the query-plan tree and
                total order Algorithm 2 would use; with ``--stats``, also
                the statistics that justified each decision (distinct
                counts, sampled selectivities, heavy hitters); with
                ``--feedback``, plan from recorded execution telemetry
                when observations exist (``--stats`` then renders the
                observed-vs-sampled comparison); with ``--analyze``,
                *execute* the query and print per-level estimated vs
                observed cardinalities beside the phase span timings
                (``EXPLAIN ANALYZE``)
* ``repl``    — interactive query shell over the loaded relations: the
                SQL-flavored language of :mod:`repro.lang` (joins,
                where/in, aggregates, group by, sample, explain), with
                caret diagnostics and ``\\timing``-style meta-commands
* ``serve``   — long-lived asyncio server speaking newline-delimited
                JSON over TCP: concurrent clients multiplexed over
                worker threads, a prepared-query cache keyed by
                normalized statement text, and AGM admission control
                (``--row-budget N`` rejects enumeration queries whose
                fractional-cover output bound exceeds N before running
                them; ``--queue-budget N`` serializes heavy queries)
* ``worker``  — shard worker for distributed execution: serves pickled
                shard tasks over the length-prefixed frame protocol of
                :mod:`repro.distributed` until interrupted; point
                ``join --workers`` (or a
                :class:`~repro.distributed.DispatchScheduler`) at a
                fleet of these

``join --trace FILE`` records a span tree of the run (plan,
stats-profile, index-build, execute / per-shard) and writes it as JSON;
``join --metrics FILE`` writes the run's metrics registry in Prometheus
text format.  Both headers carry the package version, as does
``--version`` itself.

``join --feedback`` records per-level execution telemetry as the join
runs and re-plans repeated executions of the same query from the
*observed* statistics (cardinality feedback); with ``--shards`` it also
records per-shard wall times and splits shards that ran hot on the next
attribute the next time around (online re-sharding).  Observations live
in the in-process statistics provider, so the flag pays off within one
process (servers, notebooks, the test harness) — a fresh process starts
unobserved.

Each CSV needs a header row of attribute names; the file stem is the
relation name.  ``--where`` / ``--where-in`` values are typed the way
the loader typed the attribute's columns: integers when every loaded
cell parses as one, strings otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import ALGORITHMS
from repro.engine.parallel import batches
from repro.errors import QueryError
from repro.core.qptree import QPTree
from repro.core.query import JoinQuery
from repro.engine.backends import backend_kinds
from repro.hypergraph.agm import agm_bound, optimal_fractional_cover
from repro.hypergraph.duality import optimal_vertex_packing, packing_lower_bound
from repro.feedback.config import FeedbackConfig
from repro.io import load_database_csv, save_relation_csv
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracing import Tracer
from repro.query.builder import Q, QueryBuilder
from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Worst-case optimal joins over CSV relations "
        "(Ngo-Porat-Re-Rudra, PODS 2012).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the package version and exit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    join_cmd = commands.add_parser("join", help="compute the natural join")
    join_cmd.add_argument("files", nargs="+", help="CSV files, one relation each")
    join_cmd.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="auto",
        help="join algorithm (default: auto)",
    )
    join_cmd.add_argument(
        "--backend",
        choices=backend_kinds(),
        default=None,
        help="index backend (default: planner's choice)",
    )
    join_cmd.add_argument(
        "--stream",
        action="store_true",
        help="print rows as the engine yields them (no materialization)",
    )
    join_cmd.add_argument(
        "--shards",
        type=_shard_count,
        default=None,
        metavar="K",
        help="partition the first join attribute into K shards run on a "
        "worker pool ('auto' picks from data statistics and CPU count)",
    )
    join_cmd.add_argument(
        "--batch",
        type=_batch_size,
        default=None,
        metavar="N",
        help="write output rows in batches of N (implies --stream delivery)",
    )
    join_cmd.add_argument(
        "--workers",
        type=_worker_addresses,
        default=None,
        metavar="HOST:PORT,...",
        help="dispatch shards to this fleet of 'python -m repro worker' "
        "servers instead of the local pool (implies --shards auto "
        "unless --shards is given)",
    )
    join_cmd.add_argument(
        "--steal",
        action="store_true",
        help="within-run work stealing: shards a rate model over "
        "completed-shard timings flags as hot are sub-split at claim "
        "time so idle workers steal them",
    )
    join_cmd.add_argument(
        "--predictive",
        action="store_true",
        help="pre-split shards holding heavy-hitter values at plan time "
        "(closes the one-slow-run gap of --feedback re-sharding)",
    )
    join_cmd.add_argument(
        "--feedback",
        action="store_true",
        help="record execution telemetry and re-plan repeated queries "
        "from observed statistics (cardinality feedback + online "
        "re-sharding)",
    )
    join_cmd.add_argument(
        "--count",
        action="store_true",
        help="print the number of result rows instead of the rows; the "
        "count is folded into the join's level loops (no enumeration), "
        "and with --shards K the workers return partial counts",
    )
    join_cmd.add_argument(
        "--sample",
        type=_batch_size,
        default=None,
        metavar="K",
        help="print K distinct uniform result rows instead of the full "
        "result, drawn by AGM-weighted rejection without materializing "
        "the join (deterministic with --seed)",
    )
    join_cmd.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="random seed for --sample (fixed seed, fixed sample)",
    )
    join_cmd.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a span tree of the run (plan, stats-profile, "
        "index-build, execute / per-shard) and write it as JSON",
    )
    join_cmd.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the run's metrics registry in Prometheus text format",
    )
    _add_query_options(join_cmd)
    join_cmd.add_argument(
        "-o", "--output", help="write the result CSV here (default: stdout)"
    )

    worker_cmd = commands.add_parser(
        "worker",
        help="shard worker server for distributed join execution",
    )
    worker_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    worker_cmd.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: an ephemeral port, printed at startup)",
    )

    bound_cmd = commands.add_parser(
        "bound", help="print the AGM bound and its certificates"
    )
    bound_cmd.add_argument("files", nargs="+")

    explain_cmd = commands.add_parser(
        "explain", help="print the engine's join plan"
    )
    explain_cmd.add_argument("files", nargs="+")
    explain_cmd.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="auto",
        help="plan for this algorithm (default: auto)",
    )
    explain_cmd.add_argument(
        "--backend",
        choices=backend_kinds(),
        default=None,
        help="plan with this index backend (default: planner's choice)",
    )
    explain_cmd.add_argument(
        "--stats",
        action="store_true",
        help="also print the statistics that justified each decision "
        "(distinct counts, sampled selectivities, heavy hitters)",
    )
    explain_cmd.add_argument(
        "--feedback",
        action="store_true",
        help="plan from recorded execution telemetry when observations "
        "exist (combine with --stats for the observed-vs-sampled table)",
    )
    explain_cmd.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query and print per-level estimated vs observed "
        "cardinalities beside the phase span timings (EXPLAIN ANALYZE)",
    )
    _add_query_options(explain_cmd)

    repl_cmd = commands.add_parser(
        "repl",
        help="interactive query shell over CSV-loaded relations",
    )
    repl_cmd.add_argument(
        "files", nargs="+", help="CSV files, one relation each"
    )
    repl_cmd.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="auto",
        help="join algorithm for every statement (default: auto)",
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="long-lived NDJSON-over-TCP query server with AGM "
        "admission control",
    )
    serve_cmd.add_argument(
        "files", nargs="+", help="CSV files, one relation each"
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=7712,
        help="TCP port (0 picks a free one; default: 7712)",
    )
    serve_cmd.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="auto",
        help="join algorithm for every statement (default: auto)",
    )
    serve_cmd.add_argument(
        "--row-budget",
        type=float,
        default=None,
        metavar="N",
        help="reject enumeration queries whose AGM output bound exceeds "
        "N rows (aggregates and samples stay admitted; default: no limit)",
    )
    serve_cmd.add_argument(
        "--queue-budget",
        type=float,
        default=None,
        metavar="N",
        help="serialize queries whose AGM bound exceeds N rows (one "
        "heavy query at a time; default: no queueing)",
    )
    serve_cmd.add_argument(
        "--max-concurrent",
        type=_batch_size,
        default=32,
        metavar="K",
        help="concurrent query ceiling across all clients (default: 32)",
    )
    serve_cmd.add_argument(
        "--cache-capacity",
        type=_batch_size,
        default=128,
        metavar="K",
        help="prepared-query cache entries, LRU-evicted (default: 128)",
    )
    serve_cmd.add_argument(
        "--batch",
        type=_batch_size,
        default=None,
        metavar="N",
        help="rows per streamed response line (default: "
        "the server default)",
    )

    return parser


def _add_query_options(command: argparse.ArgumentParser) -> None:
    """The query-layer clauses, shared by ``join`` and ``explain``."""
    command.add_argument(
        "--where",
        type=_where_clause,
        action="append",
        default=[],
        metavar="ATTR=VALUE",
        help="bind an attribute to a constant (repeatable); the binding "
        "is pushed into the plan and the attribute's level is eliminated",
    )
    command.add_argument(
        "--where-in",
        type=_where_in_clause,
        action="append",
        default=[],
        metavar="ATTR=V1,V2,...",
        help="keep rows whose attribute value is in the set (repeatable); "
        "runs as a per-level filter inside the executors",
    )
    command.add_argument(
        "--select",
        type=_select_list,
        default=None,
        metavar="A,B,...",
        help="project the output onto these attributes "
        "(streamed, deduplicated)",
    )


def _coerce(query: JoinQuery, attribute: str, text: str):
    """Type a clause value the way the CSV loader typed the column.

    ``load_relation_csv`` stores a column as ints only when *every*
    cell parses; mirroring that per loaded relation keeps ``--where
    A=1`` matching the data it was loaded against — on a mixed (string-
    typed) column the value stays a string, instead of becoming an int
    that can never equal anything.
    """
    try:
        as_int = int(text)
    except ValueError:
        return text
    for relation in query.relations.values():
        if attribute not in relation.attribute_set:
            continue
        position = relation.position(attribute)
        if any(
            not isinstance(row[position], int) for row in relation.tuples
        ):
            return text
    return as_int


def _where_clause(text: str) -> tuple[str, str]:
    """argparse type for ``--where``: ``ATTR=VALUE`` (value typed later,
    against the loaded columns)."""
    attribute, sep, value = text.partition("=")
    if not sep or not attribute.strip():
        raise argparse.ArgumentTypeError(
            f"expected ATTR=VALUE, got {text!r}"
        )
    return attribute.strip(), value.strip()


def _where_in_clause(text: str) -> tuple[str, tuple]:
    """argparse type for ``--where-in``: ``ATTR=V1,V2,...`` (values
    typed later, against the loaded columns)."""
    attribute, sep, values = text.partition("=")
    if not sep or not attribute.strip() or not values.strip():
        raise argparse.ArgumentTypeError(
            f"expected ATTR=V1,V2,..., got {text!r}"
        )
    return attribute.strip(), tuple(v.strip() for v in values.split(","))


def _select_list(text: str) -> tuple[str, ...]:
    """argparse type for ``--select``: a comma-separated attribute list."""
    attributes = tuple(a.strip() for a in text.split(",") if a.strip())
    if not attributes:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated attribute list, got {text!r}"
        )
    return attributes


def _build_query(args: argparse.Namespace) -> QueryBuilder:
    """Assemble the fluent builder every query command drives."""
    query = _load_query(args.files)
    builder = Q(query).using(algorithm=args.algorithm, backend=args.backend)
    if getattr(args, "feedback", False):
        builder = builder.using(feedback=FeedbackConfig())
    for attribute, value in args.where:
        builder = builder.where(
            **{attribute: _coerce(query, attribute, value)}
        )
    for attribute, values in args.where_in:
        builder = builder.where_in(
            attribute, tuple(_coerce(query, attribute, v) for v in values)
        )
    if args.select is not None:
        builder = builder.select(*args.select)
    return builder


def _shard_count(text: str) -> int | str:
    """argparse type for ``--shards``: a positive int or the word 'auto'."""
    if text == "auto":
        return text
    try:
        count = int(text)
    except ValueError:
        count = 0
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive shard count or 'auto', got {text!r}"
        )
    return count


def _batch_size(text: str) -> int:
    """argparse type for ``--batch``: a positive int.

    Rejected here so a bad value is a clean usage error — not a
    traceback after ``-o`` has already opened (and truncated) the
    output file.
    """
    try:
        size = int(text)
    except ValueError:
        size = 0
    if size < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive batch size, got {text!r}"
        )
    return size


def _worker_addresses(text: str) -> list[tuple[str, int]]:
    """argparse type for ``--workers``: comma-separated host:port pairs."""
    addresses = []
    for part in text.split(","):
        host, sep, port_text = part.strip().rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = 0
        if not sep or not host or not 0 < port < 65536:
            raise argparse.ArgumentTypeError(
                f"expected HOST:PORT[,HOST:PORT...], got {part!r}"
            )
        addresses.append((host, port))
    return addresses


def _sharding(builder: QueryBuilder, args: argparse.Namespace) -> QueryBuilder:
    """Attach the sharding spec (and the fleet, with ``--workers``)."""
    if (
        args.shards is None
        and args.workers is None
        and not args.steal
        and not args.predictive
    ):
        return builder
    from repro.query.shards import ShardSpec

    spec = ShardSpec(
        args.shards if args.shards is not None else "auto",
        predictive=args.predictive,
        steal=args.steal or None,
    )
    if args.workers is None:
        return builder.using(shards=spec)
    from repro.distributed import DispatchScheduler, SocketTransport

    fleet = DispatchScheduler(
        [SocketTransport(host, port) for host, port in args.workers]
    )
    return builder.using(shards=spec, scheduler=fleet)


def _load_query(files: list[str]) -> JoinQuery:
    return JoinQuery(load_database_csv(files))


def _cmd_join(args: argparse.Namespace) -> int:
    if args.count and args.sample is not None:
        raise QueryError("--count and --sample are mutually exclusive")
    if (args.count or args.sample is not None) and (
        args.stream or args.batch is not None
    ):
        raise QueryError(
            "--count/--sample replace the output; they do not combine "
            "with --stream or --batch"
        )
    builder = _build_query(args)  # QueryError -> usage error via main()
    tracer = Tracer(name="join") if args.trace is not None else None
    registry = MetricsRegistry() if args.metrics is not None else None
    if tracer is not None or registry is not None:
        builder = builder.using(tracer=tracer, metrics=registry)
    status = _run_join(builder, args)
    if tracer is not None:
        with open(args.trace, "w", encoding="utf-8") as sink:
            sink.write(tracer.export_json() + "\n")
        print(f"trace -> {args.trace}", file=sys.stderr)
    if registry is not None:
        with open(args.metrics, "w", encoding="utf-8") as sink:
            sink.write(registry.to_prometheus())
        print(f"metrics -> {args.metrics}", file=sys.stderr)
    return status


def _run_join(builder: QueryBuilder, args: argparse.Namespace) -> int:
    """Dispatch one ``join`` invocation (count/sample/stream/materialize)."""
    builder = _sharding(builder, args)
    if args.count:
        print(builder.count())
        return 0
    if args.sample is not None:
        rows = builder.sample(args.sample, seed=args.seed)
        print(",".join(builder.output_attributes))
        for row in rows:
            print(",".join(str(v) for v in row))
        return 0
    if args.stream or builder.context.parallel or args.batch is not None:
        return _stream_join(builder, args)
    result = builder.run()
    if args.output:
        save_relation_csv(result, args.output)
        print(f"{len(result)} tuples -> {args.output}")
    else:
        print(",".join(result.attributes))
        for row in sorted(result.tuples, key=repr):
            print(",".join(str(v) for v in row))
    return 0


def _stream_join(builder: QueryBuilder, args: argparse.Namespace) -> int:
    """End-to-end streaming: rows leave the process as they are found.

    ``--shards`` routes through the parallel sharded driver; ``--batch``
    groups rows into fixed-size batches and writes each batch with a
    single call, so per-row write overhead is amortized.
    """
    rows = builder.stream()
    header = ",".join(builder.output_attributes)

    def chunks():
        """(csv text, row count) pairs — one per batch, or per row."""
        if args.batch is not None:
            for batch in batches(rows, args.batch):
                text = "".join(
                    ",".join(str(v) for v in row) + "\n" for row in batch
                )
                yield text, len(batch)
        else:
            for row in rows:
                yield ",".join(str(v) for v in row) + "\n", 1

    if args.output:
        count = 0
        with open(args.output, "w", encoding="utf-8", newline="") as sink:
            sink.write(header + "\n")
            for text, rows_in_chunk in chunks():
                sink.write(text)
                count += rows_in_chunk
        print(f"{count} tuples -> {args.output}")
    else:
        print(header)
        for text, _ in chunks():
            print(text, end="")
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    query = _load_query(args.files)
    sizes = query.sizes()
    cover = optimal_fractional_cover(query.hypergraph, sizes)
    bound = agm_bound(query.hypergraph, sizes, cover)
    packing = optimal_vertex_packing(query.hypergraph, sizes)
    print(f"relations: {', '.join(f'{e}({n})' for e, n in sizes.items())}")
    print(f"AGM bound: {bound:.3f} output tuples")
    print("optimal fractional cover:")
    for eid, weight in cover.items():
        print(f"  x[{eid}] = {weight}")
    print("dual packing certificate (worst-case witness):")
    for vertex, weight in packing.items():
        print(f"  y[{vertex}] = {weight}")
    print(f"certified worst case: {packing_lower_bound(packing):.3f} tuples")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    builder = _build_query(args)
    if args.analyze:
        analysis = builder.explain(analyze=True)
        print(analysis.describe(show_stats=args.stats))
        return 0
    plan = builder.plan()
    print(plan.describe(show_stats=args.stats))
    print()
    print("Algorithm 2 query-plan tree (for --algorithm nprr):")
    tree = QPTree(builder.query.hypergraph)
    print(tree.render())
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.lang.repl import Repl
    from repro.query.context import ExecutionContext
    from repro.relations.database import Database

    database = Database(load_database_csv(args.files))
    context = ExecutionContext(algorithm=args.algorithm)
    return Repl(database, context=context).run()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.query.context import ExecutionContext
    from repro.relations.database import Database
    from repro.server.admission import AdmissionController
    from repro.server.cache import PreparedCache
    from repro.server.service import DEFAULT_BATCH_ROWS, JoinServer

    database = Database(load_database_csv(args.files))
    server = JoinServer(
        database,
        host=args.host,
        port=args.port,
        admission=AdmissionController(
            row_budget=args.row_budget,
            queue_budget=args.queue_budget,
            max_concurrent=args.max_concurrent,
        ),
        cache=PreparedCache(capacity=args.cache_capacity),
        context=ExecutionContext(algorithm=args.algorithm),
        batch_rows=args.batch or DEFAULT_BATCH_ROWS,
    )

    async def run() -> None:
        host, port = await server.start()
        budget = (
            f"row budget {args.row_budget:g}"
            if args.row_budget is not None
            else "no row budget"
        )
        print(
            f"repro server listening on {host}:{port} "
            f"({len(database)} relation(s), {budget})",
            file=sys.stderr,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed.worker import WorkerServer

    server = WorkerServer(host=args.host, port=args.port)
    host, port = server.address
    print(f"repro worker listening on {host}:{port}", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "join": _cmd_join,
        "bound": _cmd_bound,
        "explain": _cmd_explain,
        "repl": _cmd_repl,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
    }
    try:
        return handlers[args.command](args)
    except QueryError as error:
        # Bad query-layer input (unknown --where attribute, conflicting
        # bindings, ...) is a usage error, like every other bad flag —
        # never a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
