"""Core algorithms: the paper's contributions and their extensions."""

from repro.core.arity_two import (
    ArityTwoJoin,
    arity_two_join,
    cycle_join,
    decompose_support,
    is_half_integral,
)
from repro.core.conjunctive import Atom, ConjunctiveQuery, Const, Var
from repro.core.estimates import (
    Estimate,
    agm_estimate,
    estimate_report,
    integral_cover_bound,
    product_bound,
    subquery_estimates,
)
from repro.core.fd import (
    FunctionalDependency,
    closure,
    expand_query,
    expand_relation,
    fd_aware_bound,
    fd_aware_join,
)
from repro.core.generic_join import GenericJoin, generic_join
from repro.core.leapfrog import LeapfrogTriejoin, leapfrog_join
from repro.core.lw import LWJoin, lw_join, triangle_join
from repro.core.nprr import JoinStatistics, NPRRJoin, nprr_join
from repro.core.patterns import (
    count_pattern,
    find_pattern,
    pattern_bound,
    pattern_query,
)
from repro.core.qptree import QPNode, QPTree
from repro.core.query import JoinQuery
from repro.core.relaxed import (
    RelaxedJoin,
    bfs_representatives,
    candidate_sets,
    minimal_candidate_sets,
    relaxed_join,
    relaxed_join_reference,
)
from repro.core.sat import (
    formula_to_query,
    is_satisfiable,
    satisfying_assignments,
)

__all__ = [
    "ArityTwoJoin",
    "Atom",
    "ConjunctiveQuery",
    "Const",
    "Estimate",
    "agm_estimate",
    "estimate_report",
    "integral_cover_bound",
    "product_bound",
    "subquery_estimates",
    "FunctionalDependency",
    "GenericJoin",
    "JoinQuery",
    "JoinStatistics",
    "LWJoin",
    "LeapfrogTriejoin",
    "NPRRJoin",
    "QPNode",
    "QPTree",
    "RelaxedJoin",
    "Var",
    "arity_two_join",
    "bfs_representatives",
    "candidate_sets",
    "closure",
    "count_pattern",
    "cycle_join",
    "decompose_support",
    "find_pattern",
    "pattern_bound",
    "pattern_query",
    "expand_query",
    "expand_relation",
    "fd_aware_bound",
    "fd_aware_join",
    "formula_to_query",
    "generic_join",
    "is_half_integral",
    "is_satisfiable",
    "leapfrog_join",
    "lw_join",
    "minimal_candidate_sets",
    "nprr_join",
    "relaxed_join",
    "relaxed_join_reference",
    "satisfying_assignments",
    "triangle_join",
]
