"""Cardinality estimation from AGM bounds: the paper's motivating use.

The introduction frames AGM's inequality as "previously unknown,
nontrivial methods to estimate the cardinality of a query result — a
fundamental problem to support efficient query processing".  This module
packages that use: given a query (or any sub-query of it), produce
worst-case output estimates that are *guaranteed upper bounds*, unlike the
independence-assumption estimators the paper's related work criticizes
[18].

Three estimators, in increasing tightness:

* :func:`product_bound` — the trivial ``prod_e N_e``;
* :func:`integral_cover_bound` — the best join-only "cover" bound
  (``N^2`` for the triangle);
* :func:`agm_estimate` — the fractional cover bound (``N^{3/2}``), with
  the certificate cover attached.

:func:`subquery_estimates` applies the AGM estimator to every connected
sub-query, the shape a Selinger-style optimizer would consume, and
:func:`estimate_report` renders the comparison.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.core.query import JoinQuery
from repro.hypergraph.agm import (
    agm_log_bound,
    minimum_integral_cover,
    optimal_fractional_cover,
)
from repro.hypergraph.covers import FractionalCover


@dataclass(frozen=True)
class Estimate:
    """One output-size estimate with its certificate."""

    method: str
    log_bound: float
    cover: FractionalCover | None = None

    @property
    def bound(self) -> float:
        if self.log_bound == -math.inf:
            return 0.0
        return math.exp(self.log_bound)

    def __str__(self) -> str:
        return f"{self.method}: <= {self.bound:.4g}"


def product_bound(query: JoinQuery) -> Estimate:
    """``prod_e N_e`` — what a cross product could produce."""
    log_total = 0.0
    for relation in query.relations.values():
        if len(relation) == 0:
            return Estimate("product", -math.inf)
        log_total += math.log(len(relation))
    return Estimate("product", log_total)


def integral_cover_bound(query: JoinQuery) -> Estimate:
    """The best 0/1 cover bound (the classical join-based estimate)."""
    cover = minimum_integral_cover(query.hypergraph, query.sizes())
    log_bound = agm_log_bound(query.hypergraph, query.sizes(), cover)
    return Estimate("integral cover", log_bound, cover)


def agm_estimate(query: JoinQuery) -> Estimate:
    """The AGM fractional-cover bound — tight in the worst case."""
    cover = optimal_fractional_cover(query.hypergraph, query.sizes())
    log_bound = agm_log_bound(query.hypergraph, query.sizes(), cover)
    return Estimate("AGM fractional cover", log_bound, cover)


def subquery_estimates(
    query: JoinQuery, min_relations: int = 2
) -> dict[frozenset[str], Estimate]:
    """AGM estimates for every *attribute-connected* relation subset.

    Restricted to subsets whose hypergraph is connected (disconnected
    subsets are cross products whose bound factorizes anyway) and whose
    attribute set is covered by the subset itself (always true here since
    the sub-query's universe is the union of its own edges).
    """
    out: dict[frozenset[str], Estimate] = {}
    edge_ids = query.edge_ids
    for r in range(min_relations, len(edge_ids) + 1):
        for subset in itertools.combinations(edge_ids, r):
            sub_query = JoinQuery(
                [query.relation(eid) for eid in subset]
            )
            components = sub_query.hypergraph.connected_components()
            if len([c for c in components if c.edges]) != 1:
                continue
            out[frozenset(subset)] = agm_estimate(sub_query)
    return out


def estimate_report(query: JoinQuery) -> str:
    """A human-readable comparison of the three whole-query estimators."""
    estimates = [
        product_bound(query),
        integral_cover_bound(query),
        agm_estimate(query),
    ]
    lines = [f"query: {query!r}"]
    lines.extend(f"  {estimate}" for estimate in estimates)
    ratio = estimates[1].log_bound - estimates[2].log_bound
    if math.isfinite(ratio) and ratio > 0:
        lines.append(
            f"  (fractional beats integral by {math.exp(ratio):.4g}x)"
        )
    return "\n".join(lines)
