"""Natural join queries: the binding of relations to a query hypergraph.

A natural join query (Section 2) is just a finite set of relations; its
hypergraph has the union of their attributes as vertices and one edge per
relation.  :class:`JoinQuery` packages that binding with validation and the
bookkeeping every algorithm in this library consumes: deterministic edge
order (``e_1, ..., e_m`` for Algorithm 3), sizes (``N_e``), and the output
attribute order.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import QueryError
from repro.hypergraph.covers import FractionalCover
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.database import Database
from repro.relations.relation import Relation


class JoinQuery:
    """A natural join query ``join_{i in q} R_i``.

    Parameters
    ----------
    relations:
        The relations to join, in the edge order the algorithms will use.
        Relation names become edge ids and must be unique; use
        :meth:`Relation.with_name` to join the same relation twice
        (Section 7.3's multiset hypergraphs).
    """

    __slots__ = ("relations", "hypergraph")

    def __init__(self, relations: Sequence[Relation]) -> None:
        rels = list(relations)
        if not rels:
            raise QueryError("a join query needs at least one relation")
        by_id: dict[str, Relation] = {}
        for relation in rels:
            if relation.name in by_id:
                raise QueryError(
                    f"duplicate relation name {relation.name!r}; rename one "
                    "occurrence to join a relation with itself"
                )
            by_id[relation.name] = relation
        # Attribute universe in order of first appearance.
        vertices: list[str] = []
        seen: set[str] = set()
        for relation in rels:
            for attribute in relation.attributes:
                if attribute not in seen:
                    seen.add(attribute)
                    vertices.append(attribute)
        edges = {
            relation.name: relation.attributes for relation in rels
        }
        object.__setattr__(self, "relations", by_id)
        object.__setattr__(self, "hypergraph", Hypergraph(vertices, edges))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("JoinQuery instances are immutable")

    def __reduce__(self):
        # Rebuild through __init__ (slot-based pickling would hit the
        # immutability guard); lets queries cross process boundaries for
        # sharded parallel execution.
        return (JoinQuery, (list(self.relations.values()),))

    # -- accessors ---------------------------------------------------------

    @property
    def edge_ids(self) -> tuple[str, ...]:
        """Edge (= relation) ids in the fixed order ``e_1, ..., e_m``."""
        return self.hypergraph.edge_ids

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes, in order of first appearance (the output order)."""
        return self.hypergraph.vertices

    def relation(self, edge_id: str) -> Relation:
        """The relation bound to an edge id."""
        try:
            return self.relations[edge_id]
        except KeyError:
            raise QueryError(f"unknown relation {edge_id!r}") from None

    def sizes(self) -> dict[str, int]:
        """``{edge id: N_e}``, the size vector of the AGM machinery."""
        return {eid: len(rel) for eid, rel in self.relations.items()}

    def total_input_size(self) -> int:
        """``sum_e N_e`` — the input-reading term of Definition 2.1."""
        return sum(len(rel) for rel in self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def __repr__(self) -> str:
        inner = " * ".join(
            f"{rel.name}({','.join(rel.attributes)})"
            for rel in self.relations.values()
        )
        return f"JoinQuery({inner})"

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_database(
        cls, database: Database, names: Iterable[str]
    ) -> "JoinQuery":
        """Build a query over catalogued relations."""
        return cls([database[name] for name in names])

    @classmethod
    def from_hypergraph(
        cls,
        hypergraph: Hypergraph,
        relations: Mapping[str, Relation],
    ) -> "JoinQuery":
        """Bind relations to an existing hypergraph (order and attribute
        sets must match edge ids exactly)."""
        rels = []
        for eid in hypergraph.edge_ids:
            if eid not in relations:
                raise QueryError(f"no relation supplied for edge {eid!r}")
            relation = relations[eid]
            if relation.attribute_set != hypergraph.edges[eid]:
                raise QueryError(
                    f"relation {eid!r} has attributes "
                    f"{sorted(relation.attribute_set)}, edge declares "
                    f"{sorted(hypergraph.edges[eid])}"
                )
            rels.append(relation.with_name(eid))
        return cls(rels)

    # -- validation helpers -------------------------------------------------------

    def validate_cover(self, cover: FractionalCover) -> None:
        """Raise unless ``cover`` is a valid fractional cover of this query."""
        cover.validate(self.hypergraph)

    def is_lw_instance(self) -> bool:
        """True when the query matches the Loomis-Whitney shape (Section 4)."""
        return self.hypergraph.is_lw_instance()

    def empty_output(self, name: str = "J") -> Relation:
        """An empty relation with the query's output schema."""
        return Relation(name, self.attributes, ())
