"""Algorithm 2: the worst-case optimal join for arbitrary queries.

This module implements Section 5 of the paper: given a natural join query,
a fractional edge cover ``x``, and the query-plan tree / total order /
search trees of Sections 5.3.1-5.3.2, procedure ``Recursive-Join``
(Procedure 5) computes the join in time ``O(mn prod_e N_e^{x_e})`` plus
preprocessing (Theorem 5.1).

Implementation notes
--------------------
* **Tuples are total-order prefixes.**  Property (TO1)/(TO2) of the total
  order guarantees that the attribute set ``S cup univ(u)`` of every
  intermediate result is a *prefix* of the total order, so intermediate
  tuples are plain value tuples aligned with it — no dict allocation in the
  hot loop.
* **The cover per node is precompiled.**  A node is always invoked with the
  same cover vector: the left child inherits ``(y_1..y_{k-1})``, the right
  child the rescaled ``(y_i / (1-y_{e_k}))_{i<k}`` (Procedure 5, lines 14
  and 22).  We therefore push the cover down the tree once, at compile
  time, along with every per-node constant the per-tuple loop needs.
* **Case a/b comparison.**  The per-tuple test
  ``prod_{i<k} c_i^{y_i/(1-y_k)} < c_k`` is evaluated either exactly —
  raise both sides to the power ``q (1-y_k)`` where ``q`` is the common
  denominator of the node's cover, leaving an integer comparison — or in
  floating log-space.  The choice affects only the run-time analysis, never
  the output: both branches compute the same tuple set.
* **Exactness.**  We rely on (and property-test) the invariant that
  ``Recursive-Join(u, y, t_S)`` returns exactly
  ``{(t_S, t_U) : forall i <= k, t_{(S u U) cap e_i} in
  pi_{(S u U) cap e_i}(R_{e_i})}``; at the root this *is* the join, so no
  final pruning pass is needed (unlike Algorithm 1).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Iterable, Iterator, Sequence

from repro.core.qptree import QPNode, QPTree
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.agm import optimal_fractional_cover
from repro.hypergraph.covers import FractionalCover
from repro.relations.database import Database
from repro.relations.relation import Relation, Row
from repro.relations.trie import TrieIndex

#: Maximum cover common-denominator for which the exact integer comparison
#: is used under ``comparison="auto"``.
EXACT_DENOMINATOR_LIMIT = 64


@dataclass
class JoinStatistics:
    """Lightweight counters exposed for benchmarks and tests."""

    recursive_calls: int = 0
    leaf_calls: int = 0
    case_a: int = 0
    case_b: int = 0
    tuples_emitted: int = 0
    comparisons: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "recursive_calls": self.recursive_calls,
            "leaf_calls": self.leaf_calls,
            "case_a": self.case_a,
            "case_b": self.case_b,
            "tuples_emitted": self.tuples_emitted,
            "comparisons": self.comparisons,
        }


@dataclass
class _NodePlan:
    """Everything the per-tuple loop needs at one QP node, precompiled."""

    k: int
    start: int                      # rank where univ(u) begins (= |S|)
    u_size: int                     # |univ(u)|
    cover: tuple[Fraction, ...]     # y_1 .. y_k for this node
    # Leaf-only: (edge id, trie) for e_1..e_k.
    leaf_edges: list[tuple[str, TrieIndex]] = field(default_factory=list)
    # Internal-only fields:
    anchor: str = ""
    anchor_trie: TrieIndex | None = None
    w_size: int = 0                 # |W| = |U \ e_k|
    wm_size: int = 0                # |W^-| = |U cap e_k|
    yk_float: float = 0.0
    yk_ge_one: bool = False
    # Edges e_i (i<k) with e_i cap W^- nonempty:
    #   (edge id, trie, depth of its W^- part, offsets of that part within
    #    the W^- block, float exponent y_i, exact exponent p_i or None)
    checked_edges: list[
        tuple[str, TrieIndex, int, tuple[int, ...], float, int | None]
    ] = field(default_factory=list)
    one_minus_yk_float: float = 0.0
    rhs_exponent: int | None = None  # q*(1-y_k) for the exact comparison


class NPRRJoin:
    """Executor for Algorithm 2 over one query.

    Parameters
    ----------
    query:
        The natural join query.
    cover:
        A fractional edge cover of the query's hypergraph.  Defaults to the
        LP-optimal cover for the current relation sizes (Section 2).
    edge_order:
        The fixed order ``e_1..e_m`` used by Algorithm 3.  Defaults to the
        query's relation order.
    database:
        Optional catalog whose trie cache should be used (Remark 5.2's
        ahead-of-time indexing).  When omitted, tries are built privately.
    comparison:
        ``"auto"`` (exact when the cover's common denominator is at most
        ``EXACT_DENOMINATOR_LIMIT``, else float), ``"exact"``, or
        ``"float"``.
    """

    def __init__(
        self,
        query: JoinQuery,
        cover: FractionalCover | None = None,
        edge_order: Sequence[str] | None = None,
        database: Database | None = None,
        comparison: str = "auto",
    ) -> None:
        if comparison not in ("auto", "exact", "float"):
            raise QueryError(f"unknown comparison mode {comparison!r}")
        self.query = query
        if cover is None:
            cover = optimal_fractional_cover(query.hypergraph, query.sizes())
        cover.validate(query.hypergraph)
        self.cover = cover
        self.tree = QPTree(query.hypergraph, edge_order)
        self.comparison = comparison
        self.stats = JoinStatistics()
        self._tries: dict[str, TrieIndex] = {}
        self._edge_ranks: dict[str, tuple[int, ...]] = {}
        for eid in query.edge_ids:
            order = self.tree.relation_order(eid)
            # Cache only for the exact catalogued object (identity):
            # same-named ad-hoc relations (e.g. pushdown sections) build
            # privately instead of being served the full index.
            if database is not None and database.is_catalogued(
                query.relation(eid)
            ):
                trie = database.trie(eid, order)
            else:
                trie = TrieIndex(query.relation(eid), order)
            self._tries[eid] = trie
            self._edge_ranks[eid] = tuple(self.tree.rank(a) for a in order)
        self._plans: dict[int, _NodePlan] = {}
        root_cover = tuple(cover[eid] for eid in self.tree.edge_order)
        self._compile(self.tree.root, root_cover)

    # -- public API -----------------------------------------------------------

    def iter_join(self) -> Iterator[Row]:
        """Stream Recursive-Join's rows in the query's attribute order.

        Procedure 5 is demand driven here: every level of the QP-tree is a
        generator, so a row reaches the caller as soon as its last
        attribute is bound — nothing is materialized along the spine.
        Statistics reset when the stream starts and are complete once it
        is exhausted.
        """
        self.stats = JoinStatistics()
        perm = tuple(
            self.tree.total_order.index(a) for a in self.query.attributes
        )
        for row in self._recursive_join(self.tree.root, ()):
            yield tuple(row[i] for i in perm)

    def execute(self, name: str = "J") -> Relation:
        """Run Recursive-Join at the root and return the join result.

        The output schema follows the query's attribute order.  This is
        the materializing wrapper over :meth:`iter_join`.
        """
        return Relation(name, self.query.attributes, self.iter_join())

    # -- compilation ------------------------------------------------------------

    def _compile(self, node: QPNode, cover: tuple[Fraction, ...]) -> None:
        """Push the cover down the QP-tree and precompute node constants."""
        k = node.label
        universe = node.universe
        start = min(self.tree.rank(v) for v in universe)
        plan = _NodePlan(k=k, start=start, u_size=len(universe), cover=cover)
        self._plans[id(node)] = plan
        if node.is_leaf:
            plan.leaf_edges = [
                (eid, self._tries[eid]) for eid in self.tree.edge_order[:k]
            ]
            return

        anchor = self.tree.edge_order[k - 1]
        anchor_set = self.tree.hypergraph.edges[anchor]
        w_minus = universe & anchor_set
        plan.anchor = anchor
        plan.anchor_trie = self._tries[anchor]
        plan.w_size = len(universe - anchor_set)
        plan.wm_size = len(w_minus)
        y_k = cover[k - 1]
        plan.yk_ge_one = y_k >= 1
        plan.yk_float = float(y_k)
        plan.one_minus_yk_float = float(1 - y_k)

        # Exact-comparison constants: common denominator q of y_1..y_k.
        q = 1
        for y in cover:
            q = q * y.denominator // math.gcd(q, y.denominator)
        use_exact = self.comparison == "exact" or (
            self.comparison == "auto" and q <= EXACT_DENOMINATOR_LIMIT
        )
        if use_exact and not plan.yk_ge_one:
            plan.rhs_exponent = int(q * (1 - y_k))

        block_start = start + plan.w_size
        block_end = start + plan.u_size
        for i in range(k - 1):
            eid = self.tree.edge_order[i]
            ranks = self._edge_ranks[eid]
            offsets = tuple(
                r - block_start for r in ranks if block_start <= r < block_end
            )
            if not offsets:
                continue
            exact_exp = int(q * cover[i]) if plan.rhs_exponent is not None else None
            plan.checked_edges.append(
                (
                    eid,
                    self._tries[eid],
                    len(offsets),
                    offsets,
                    float(cover[i]),
                    exact_exp,
                )
            )

        child_cover = cover[: k - 1]
        if node.left is not None:
            self._compile(node.left, child_cover)
        if node.right is not None:
            if plan.yk_ge_one:
                # Never recursed into (case b always applies), but compile
                # with the un-rescaled cover so the subtree stays valid.
                self._compile(node.right, child_cover)
            else:
                scale = 1 / (1 - y_k)
                self._compile(
                    node.right, tuple(y * scale for y in child_cover)
                )

    # -- trie walking -----------------------------------------------------------

    def _walk(self, eid: str, prefix: Row):
        """Walk ``R_e``'s trie by every attribute of ``e`` already bound in
        ``prefix`` (a total-order prefix tuple).  Returns the reached node
        or ``None``."""
        ranks = self._edge_ranks[eid]
        cut = bisect_left(ranks, len(prefix))
        return self._tries[eid].walk([prefix[r] for r in ranks[:cut]])

    # -- Procedure 5 ------------------------------------------------------------

    def _recursive_join(self, node: QPNode, t_s: Row) -> Iterator[Row]:
        """``Recursive-Join(u, y, t_S)``; ``y`` was precompiled per node.

        A generator: each level of the QP-tree pulls tuples from its left
        child lazily and yields extensions as it finds them.
        """
        self.stats.recursive_calls += 1
        plan = self._plans[id(node)]

        if node.is_leaf:
            yield from self._leaf_join(plan, t_s)
            return

        # Lines 10-14: the left subproblem (or the singleton {t_S}).
        if node.left is None:
            level: Iterable[Row] = (t_s,)
        else:
            level = self._recursive_join(node.left, t_s)
        if plan.wm_size == 0:
            yield from level  # lines 16-17
            return

        prefix_len = plan.start + plan.w_size
        wm_size = plan.wm_size
        anchor_trie = plan.anchor_trie
        assert anchor_trie is not None
        for t in level:
            anchor_node = self._walk(plan.anchor, t)
            if anchor_node is None:
                # pi_{W^-}(R_{e_k}[t_{S cap e_k}]) is empty: no tuple can
                # satisfy the anchor, whichever case we would pick.
                continue
            sections: list[tuple[TrieIndex, object, tuple[int, ...]]] = []
            if plan.yk_ge_one:
                decision = "b"
                for eid, trie, _d, offsets, _yf, _pe in plan.checked_edges:
                    section = self._walk(eid, t)
                    if section is None:
                        decision = "skip"
                        break
                    sections.append((trie, section, offsets))
            else:
                self.stats.comparisons += 1
                c_k = anchor_trie.count(anchor_node, wm_size)
                decision = self._decide_case(plan, t, c_k, sections)
            if decision == "skip":
                continue
            if decision == "a":
                # Case a (lines 21-25): recurse right, filter against e_k.
                self.stats.case_a += 1
                if node.right is None:
                    raise QueryError(
                        "case a reached a nil right child; the supplied "
                        "cover is not valid for this subproblem"
                    )
                for z in self._recursive_join(node.right, t):
                    tail = z[prefix_len : prefix_len + wm_size]
                    if anchor_trie.descend(anchor_node, tail) is not None:
                        self.stats.tuples_emitted += 1
                        yield z
                continue
            # Case b (lines 27-29): scan the anchor's section, check others.
            self.stats.case_b += 1
            for tail in anchor_trie.paths(anchor_node, wm_size):
                ok = True
                for trie, section, offsets in sections:
                    values = [tail[o] for o in offsets]
                    if trie.descend(section, values) is None:
                        ok = False
                        break
                if ok:
                    self.stats.tuples_emitted += 1
                    yield t + tail

    def _leaf_join(self, plan: _NodePlan, t_s: Row) -> Iterator[Row]:
        """Lines 3-9 of Procedure 5: intersect the k section-projections."""
        self.stats.leaf_calls += 1
        u_size = plan.u_size
        best: tuple | None = None
        best_count = None
        sections = []
        for eid, trie in plan.leaf_edges:
            section = self._walk(eid, t_s)
            count = trie.count(section, u_size)
            if count == 0:
                return
            sections.append((trie, section))
            if best_count is None or count < best_count:
                best_count = count
                best = (trie, section)
        assert best is not None
        best_trie, best_section = best
        for candidate in best_trie.paths(best_section, u_size):
            ok = True
            for trie, section in sections:
                if trie is best_trie and section is best_section:
                    continue
                if trie.descend(section, candidate) is None:
                    ok = False
                    break
            if ok:
                self.stats.tuples_emitted += 1
                yield t_s + candidate

    def _decide_case(
        self,
        plan: _NodePlan,
        t: Row,
        c_k: int,
        sections: list[tuple[TrieIndex, object, tuple[int, ...]]],
    ) -> str:
        """Line 21's test: ``prod_{i<k} c_i^{y_i/(1-y_k)} < c_k``.

        Returns ``"a"``, ``"b"``, or ``"skip"``.  ``sections`` is filled
        with (trie, section node, offsets) for every checked edge so case b
        can reuse the walks.  A zero ``c_i`` means edge ``e_i``'s section is
        empty — no extension of ``t`` can join, so the tuple is skipped
        outright (both cases would produce nothing).
        """
        counts: list[int] = []
        for eid, trie, depth, offsets, _yf, _pe in plan.checked_edges:
            section = self._walk(eid, t)
            c_i = trie.count(section, depth)
            if c_i == 0:
                return "skip"
            sections.append((trie, section, offsets))
            counts.append(c_i)
        if plan.rhs_exponent is not None:
            lhs = 1
            for c_i, (_e, _t, _d, _o, _yf, exponent) in zip(
                counts, plan.checked_edges
            ):
                if exponent:
                    lhs *= c_i**exponent
            return "a" if lhs < c_k**plan.rhs_exponent else "b"
        if c_k == 0:
            return "b"  # scans an empty section: nothing to do (defensive)
        lhs_log = 0.0
        for c_i, (_e, _t, _d, _o, y_float, _pe) in zip(
            counts, plan.checked_edges
        ):
            lhs_log += y_float * math.log(c_i)
        rhs_log = plan.one_minus_yk_float * math.log(c_k)
        return "a" if lhs_log < rhs_log else "b"


def nprr_join(
    query: JoinQuery,
    cover: FractionalCover | None = None,
    edge_order: Sequence[str] | None = None,
    database: Database | None = None,
    comparison: str = "auto",
    name: str = "J",
) -> Relation:
    """One-shot convenience wrapper: build an executor and run it."""
    return NPRRJoin(
        query,
        cover=cover,
        edge_order=edge_order,
        database=database,
        comparison=comparison,
    ).execute(name)
