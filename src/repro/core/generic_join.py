"""Generic Join: the attribute-at-a-time worst-case optimal join.

**Extension beyond the paper.**  The NPRR authors' follow-up ("Skew strikes
back: new developments in the theory of join algorithms", 2013) distilled
Algorithm 2 into *Generic Join*: fix a global attribute order; at depth
``i`` intersect, over every relation containing attribute ``v_i``, the set
of values extending the current prefix; recurse per value.  With
smallest-first intersection the run time is ``O(mn * AGM)`` — the same
worst-case optimality guarantee as Algorithm 2, with no per-tuple case
analysis.

We include it (and Leapfrog Triejoin) because the paper's stated future
work is to implement and compare these ideas; the benchmark harness uses
them as independently-implemented cross-checks for NPRR.

The implementation reuses :class:`~repro.relations.trie.TrieIndex`: each
relation's trie follows the global attribute order, so "the set of values
extending the prefix" is exactly the child key-set of the relation's
current trie node.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.database import Database
from repro.relations.relation import Relation, Row
from repro.relations.trie import TrieIndex, TrieNode


class GenericJoin:
    """Executor for Generic Join over one query.

    Parameters
    ----------
    query:
        The natural join query.
    attribute_order:
        Global variable order; defaults to the query's attribute order.
        Any order is worst-case optimal; orders that put selective
        attributes first are faster in practice.
    database:
        Optional catalog supplying cached tries.
    """

    def __init__(
        self,
        query: JoinQuery,
        attribute_order: Sequence[str] | None = None,
        database: Database | None = None,
    ) -> None:
        self.query = query
        order = (
            tuple(attribute_order)
            if attribute_order is not None
            else query.attributes
        )
        if set(order) != set(query.attributes) or len(order) != len(
            query.attributes
        ):
            raise QueryError(
                f"attribute order {order!r} is not a permutation of "
                f"{query.attributes!r}"
            )
        self.order = order
        rank = {a: i for i, a in enumerate(order)}
        self._tries: list[tuple[str, TrieIndex]] = []
        for eid in query.edge_ids:
            relation = query.relation(eid)
            trie_order = tuple(
                sorted(relation.attributes, key=rank.__getitem__)
            )
            if database is not None:
                trie = database.trie(eid, trie_order)
            else:
                trie = TrieIndex(relation, trie_order)
            self._tries.append((eid, trie))
        # For each depth, which relations participate (contain the attr).
        self._participants: list[list[int]] = []
        for attribute in order:
            self._participants.append(
                [
                    i
                    for i, (eid, _t) in enumerate(self._tries)
                    if attribute in query.relation(eid).attribute_set
                ]
            )

    def execute(self, name: str = "J") -> Relation:
        """Run Generic Join; returns the join in query attribute order."""
        rows: list[Row] = []
        nodes: list[TrieNode | None] = [
            trie.root for _eid, trie in self._tries
        ]
        prefix: list[object] = []
        self._recurse(0, nodes, prefix, rows)
        return Relation(name, self.order, rows).reorder(self.query.attributes)

    def _recurse(
        self,
        depth: int,
        nodes: list[TrieNode | None],
        prefix: list[object],
        out: list[Row],
    ) -> None:
        if depth == len(self.order):
            out.append(tuple(prefix))
            return
        participants = self._participants[depth]
        if not participants:
            # Attribute in no relation: impossible for validated queries.
            raise QueryError(
                f"attribute {self.order[depth]!r} is in no relation"
            )
        # Smallest-first intersection of the candidate child key sets.
        smallest = min(
            participants,
            key=lambda i: len(nodes[i].children),  # type: ignore[union-attr]
        )
        base = nodes[smallest]
        assert base is not None
        others = [i for i in participants if i != smallest]
        for value, child in base.children.items():
            advanced = None
            ok = True
            for i in others:
                node = nodes[i]
                assert node is not None
                nxt = node.children.get(value)
                if nxt is None:
                    ok = False
                    break
                if advanced is None:
                    advanced = list(nodes)
                advanced[i] = nxt
            if not ok:
                continue
            if advanced is None:
                advanced = list(nodes)
            advanced[smallest] = child
            prefix.append(value)
            self._recurse(depth + 1, advanced, prefix, out)
            prefix.pop()


def generic_join(
    query: JoinQuery,
    attribute_order: Sequence[str] | None = None,
    database: Database | None = None,
    name: str = "J",
) -> Relation:
    """One-shot convenience wrapper for Generic Join."""
    return GenericJoin(query, attribute_order, database).execute(name)
