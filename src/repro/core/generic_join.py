"""Generic Join: the attribute-at-a-time worst-case optimal join.

**Extension beyond the paper.**  The NPRR authors' follow-up ("Skew strikes
back: new developments in the theory of join algorithms", 2013) distilled
Algorithm 2 into *Generic Join*: fix a global attribute order; at depth
``i`` intersect, over every relation containing attribute ``v_i``, the set
of values extending the current prefix; recurse per value.  With
smallest-first intersection the run time is ``O(mn * AGM)`` — the same
worst-case optimality guarantee as Algorithm 2, with no per-tuple case
analysis.

We include it (and Leapfrog Triejoin) because the paper's stated future
work is to implement and compare these ideas; the benchmark harness uses
them as independently-implemented cross-checks for NPRR.

The executor is *backend generic*: it talks to its per-relation indexes
only through the :class:`~repro.engine.backends.IndexBackend` protocol
(``items`` / ``child`` / ``fanout``), so "the set of values extending the
prefix" is the child key-set of the relation's current index node whether
the index is a hash trie or a sorted flat array.  :meth:`GenericJoin.iter_join`
streams result rows one at a time; :meth:`GenericJoin.execute` is the thin
materializing wrapper.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence

from repro.core.filters import per_position_filters
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.database import DEFAULT_BACKEND, Database, build_index
from repro.relations.relation import Relation, Row, Value


class GenericJoin:
    """Executor for Generic Join over one query.

    Parameters
    ----------
    query:
        The natural join query.
    attribute_order:
        Global variable order; defaults to the query's attribute order.
        Any order is worst-case optimal; orders that put selective
        attributes first are faster in practice (see
        :mod:`repro.engine.planner`).
    database:
        Optional catalog supplying cached indexes.
    backend:
        Index backend kind (``"trie"``, ``"sorted"``, or ``"compact"``,
        see :data:`repro.relations.database.INDEX_BACKENDS`), or a mapping
        of relation name to kind for a **per-relation** choice (the
        statistics-driven planner emits these for skewed inputs);
        relations absent from the mapping use the default backend.
        Executors talk to indexes only through the ``IndexBackend``
        protocol, so mixing kinds within one join is safe.
    filters:
        Optional mapping of attribute name to a single-value predicate
        (the query layer's residual selections).  Each predicate runs at
        the level that binds its attribute, *before* recursing — a value
        failing its filter prunes the whole subtree, so the search never
        pays for completions the selection would discard.
    telemetry:
        Optional :class:`~repro.feedback.telemetry.TelemetryProbe` whose
        ``order`` matches this executor's.  When attached, the search
        runs an instrumented twin of :meth:`_search` that counts
        partials, candidates, and matches per level; when ``None`` (the
        default) the uninstrumented path runs — zero added cost.
    """

    def __init__(
        self,
        query: JoinQuery,
        attribute_order: Sequence[str] | None = None,
        database: Database | None = None,
        backend: str | Mapping[str, str] = DEFAULT_BACKEND,
        filters: Mapping[str, Callable[[Value], bool]] | None = None,
        telemetry=None,
    ) -> None:
        self.query = query
        order = (
            tuple(attribute_order)
            if attribute_order is not None
            else query.attributes
        )
        if set(order) != set(query.attributes) or len(order) != len(
            query.attributes
        ):
            raise QueryError(
                f"attribute order {order!r} is not a permutation of "
                f"{query.attributes!r}"
            )
        self.order = order
        if isinstance(backend, Mapping):
            per_relation = dict(backend)
            # Label from what each relation will actually get: a partial
            # mapping leaves the absent relations on the default kind.
            kinds = {
                per_relation.get(eid, DEFAULT_BACKEND)
                for eid in query.edge_ids
            }
            self.backend = kinds.pop() if len(kinds) == 1 else "mixed"
        else:
            per_relation = None
            self.backend = backend
        rank = {a: i for i, a in enumerate(order)}
        self._indexes = []
        for eid in query.edge_ids:
            relation = query.relation(eid)
            kind = (
                per_relation.get(eid, DEFAULT_BACKEND)
                if per_relation is not None
                else backend
            )
            index_order = tuple(
                sorted(relation.attributes, key=rank.__getitem__)
            )
            # The catalog cache is consulted per relation, and only for
            # the exact object catalogued under the name (identity, not
            # equality): an ad-hoc relation — e.g. a section created by
            # equality pushdown — that shares a catalog name must never
            # be served (or store) the full relation's index.
            if database is not None and database.is_catalogued(relation):
                index = database.index(eid, index_order, kind)
            else:
                index = build_index(relation, index_order, kind)
            self._indexes.append(index)
        # For each depth, which relations participate (contain the attr).
        self._participants: list[list[int]] = []
        for attribute in order:
            self._participants.append(
                [
                    i
                    for i, eid in enumerate(query.edge_ids)
                    if attribute in query.relation(eid).attribute_set
                ]
            )
        # Permutation taking an order-aligned row to the query's schema.
        self._output_perm = tuple(rank[a] for a in query.attributes)
        # Per-depth residual filter (None = unfiltered level).
        self._filters = per_position_filters(filters, order, query.attributes)
        if telemetry is not None and tuple(telemetry.order) != order:
            raise QueryError(
                f"telemetry probe order {telemetry.order!r} does not match "
                f"the executor's attribute order {order!r}"
            )
        self.telemetry = telemetry

    def iter_join(self) -> Iterator[Row]:
        """Stream the join's rows (query attribute order, no repeats).

        Rows are yielded as soon as the search completes a full prefix —
        nothing is materialized, so callers can stop early or pipeline the
        output.
        """
        perm = self._output_perm
        nodes = [index.root for index in self._indexes]
        search = (
            self._search if self.telemetry is None else self._search_observed
        )
        for row in search(0, nodes, []):
            yield tuple(row[i] for i in perm)

    def execute(self, name: str = "J") -> Relation:
        """Run Generic Join; returns the join in query attribute order."""
        return Relation(name, self.query.attributes, self.iter_join())

    def fold(self, folder):
        """Fold an aggregate through the level loops, skipping rows.

        Runs the same smallest-first descent as :meth:`_search`, but
        feeds each surviving prefix to ``folder`` instead of yielding
        rows, and collapses suffixes where every remaining level has a
        single unfiltered participant into one factorized count — see
        :func:`repro.aggregate.fold.fold_executor`.  Returns the folder.
        """
        # Lazy: repro.core must not import repro.aggregate at module
        # load (the aggregate package reaches back into repro.core).
        from repro.aggregate.fold import fold_executor

        return fold_executor(self, folder)

    def _search(
        self,
        depth: int,
        nodes: list[object],
        prefix: list[object],
    ) -> Iterator[Row]:
        if depth == len(self.order):
            yield tuple(prefix)
            return
        participants = self._participants[depth]
        if not participants:
            # Attribute in no relation: impossible for validated queries.
            raise QueryError(
                f"attribute {self.order[depth]!r} is in no relation"
            )
        # Smallest-first intersection of the candidate child key sets
        # (ranked by the O(1) fanout hint, exact for tries).
        indexes = self._indexes
        smallest = min(
            participants, key=lambda i: indexes[i].fanout_hint(nodes[i])
        )
        base = indexes[smallest]
        others = [i for i in participants if i != smallest]
        level_filter = self._filters[depth]
        for value, child in base.items(nodes[smallest]):
            if level_filter is not None and not level_filter(value):
                continue
            advanced = None
            ok = True
            for i in others:
                nxt = indexes[i].child(nodes[i], value)
                if nxt is None:
                    ok = False
                    break
                if advanced is None:
                    advanced = list(nodes)
                advanced[i] = nxt
            if not ok:
                continue
            if advanced is None:
                advanced = list(nodes)
            advanced[smallest] = child
            prefix.append(value)
            yield from self._search(depth + 1, advanced, prefix)
            prefix.pop()

    def _search_observed(
        self,
        depth: int,
        nodes: list[object],
        prefix: list[object],
    ) -> Iterator[Row]:
        """:meth:`_search` with telemetry counters.

        A deliberate twin rather than a flag inside :meth:`_search`: the
        uninstrumented search loop is the engine's hottest path, and
        "zero-cost when disabled" means zero — not one branch per
        candidate value.  Any change to :meth:`_search` must land here
        too; ``tests/feedback/test_telemetry.py`` asserts the two paths
        yield identical rows.
        """
        probe = self.telemetry
        if depth == len(self.order):
            yield tuple(prefix)
            return
        probe.partials[depth] += 1
        participants = self._participants[depth]
        if not participants:
            raise QueryError(
                f"attribute {self.order[depth]!r} is in no relation"
            )
        indexes = self._indexes
        smallest = min(
            participants, key=lambda i: indexes[i].fanout_hint(nodes[i])
        )
        base = indexes[smallest]
        others = [i for i in participants if i != smallest]
        level_filter = self._filters[depth]
        for value, child in base.items(nodes[smallest]):
            probe.candidates[depth] += 1
            if level_filter is not None and not level_filter(value):
                continue
            advanced = None
            ok = True
            for i in others:
                nxt = indexes[i].child(nodes[i], value)
                if nxt is None:
                    ok = False
                    break
                if advanced is None:
                    advanced = list(nodes)
                advanced[i] = nxt
            if not ok:
                continue
            probe.matches[depth] += 1
            if advanced is None:
                advanced = list(nodes)
            advanced[smallest] = child
            prefix.append(value)
            yield from self._search_observed(depth + 1, advanced, prefix)
            prefix.pop()


def generic_join(
    query: JoinQuery,
    attribute_order: Sequence[str] | None = None,
    database: Database | None = None,
    name: str = "J",
    backend: str = DEFAULT_BACKEND,
) -> Relation:
    """One-shot convenience wrapper for Generic Join."""
    return GenericJoin(query, attribute_order, database, backend).execute(name)
