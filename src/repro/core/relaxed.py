"""Relaxed joins (Section 7.2): tuples agreeing with >= m - r relations.

Definition 7.4: given a query ``q`` over ``m`` relations and a relaxation
``0 <= r <= m``, compute ``q_r = union over S in C(q, r) of join_{e in S}
R_e`` where ``C(q, r)`` holds the subsets of at least ``m - r`` edges that
still cover every attribute.

The machinery follows the paper exactly:

* ``C(q, r)`` — :func:`candidate_sets`;
* ``C-hat(q, r)`` — the antichain of *minimal* candidate sets
  (:func:`minimal_candidate_sets`): joins over supersets are contained in
  joins over subsets, so only minimal sets matter;
* ``BFS(S)`` — the support of the deterministic optimal basic feasible
  solution of ``LP(S)`` (exact simplex + Bland's rule = the paper's "picked
  in a consistent manner");
* ``C*(q, r)`` — one representative per bfs-equivalence class
  (:func:`bfs_representatives`);
* **Algorithm 6** — :class:`RelaxedJoin`: for each ``S in C*`` run
  Algorithm 2 on ``T = BFS(S)`` with the optimal vertex cover, then keep
  the tuples that agree with at least ``m - r`` of *all* relations.

Theorem 7.6 bounds ``|q_r|`` by ``sum_{S in C*} LPOpt(S)``;
:meth:`RelaxedJoin.bound` evaluates that bound and the benchmark E7
reproduces the instance where it is met with equality.
"""

from __future__ import annotations

import itertools

from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.agm import agm_bound, optimal_fractional_cover
from repro.hypergraph.covers import FractionalCover
from repro.relations.relation import Relation, Row


def candidate_sets(query: JoinQuery, relaxation: int) -> list[frozenset[str]]:
    """``C(q, r)``: edge subsets of size >= m - r covering every attribute."""
    m = len(query)
    _check_relaxation(relaxation, m)
    vertex_set = set(query.attributes)
    edge_ids = query.edge_ids
    out: list[frozenset[str]] = []
    for size in range(max(m - relaxation, 1), m + 1):
        for subset in itertools.combinations(edge_ids, size):
            covered: set[str] = set()
            for eid in subset:
                covered |= query.hypergraph.edges[eid]
            if covered == vertex_set:
                out.append(frozenset(subset))
    return out


def minimal_candidate_sets(
    query: JoinQuery, relaxation: int
) -> list[frozenset[str]]:
    """``C-hat(q, r)``: the subset-minimal members of ``C(q, r)``.

    For ``S subseteq T`` the join over ``T`` is contained in the join over
    ``S``, so the union defining ``q_r`` only needs the minimal sets.
    """
    candidates = candidate_sets(query, relaxation)
    minimal = [
        s
        for s in candidates
        if not any(other < s for other in candidates)
    ]
    # Deterministic order (lexicographic by sorted edge ids).
    return sorted(minimal, key=lambda s: sorted(s))


def bfs_cover(
    query: JoinQuery, subset: frozenset[str]
) -> FractionalCover:
    """The optimal basic feasible solution ``x*_S`` of ``LP(S)``."""
    sub = query.hypergraph.subhypergraph(sorted(subset))
    sizes = {eid: len(query.relation(eid)) for eid in subset}
    return optimal_fractional_cover(sub, sizes)


def bfs_support(query: JoinQuery, subset: frozenset[str]) -> frozenset[str]:
    """``BFS(S)``: support of the optimal LP vertex of ``LP(S)``."""
    return bfs_cover(query, subset).support()


def bfs_representatives(
    query: JoinQuery, relaxation: int
) -> list[tuple[frozenset[str], frozenset[str], FractionalCover]]:
    """``C*(q, r)``: one representative per bfs-equivalence class.

    Returns ``(S, BFS(S), x*_S)`` triples; the first (lexicographically
    smallest) member of each class represents it, and ``x*_S`` is the
    optimal vertex Algorithm 6 hands to Algorithm 2.
    """
    groups: dict[frozenset[str], tuple[frozenset[str], FractionalCover]] = {}
    for subset in minimal_candidate_sets(query, relaxation):
        cover = bfs_cover(query, subset)
        support = cover.support()
        if support not in groups:
            groups[support] = (subset, cover)
    return [
        (subset, support, cover)
        for support, (subset, cover) in groups.items()
    ]


class RelaxedJoin:
    """Algorithm 6: evaluate ``q_r`` within Theorem 7.6's bound."""

    def __init__(self, query: JoinQuery, relaxation: int) -> None:
        _check_relaxation(relaxation, len(query))
        self.query = query
        self.relaxation = relaxation
        self.representatives = bfs_representatives(query, relaxation)

    def execute(self, name: str = "Qr") -> Relation:
        """Run Algorithm 6 and return ``q_r`` (on all attributes)."""
        query = self.query
        m = len(query)
        need = m - self.relaxation
        attributes = query.attributes
        membership = []
        for eid in query.edge_ids:
            relation = query.relation(eid)
            cols = [attributes.index(a) for a in relation.attributes]
            membership.append((cols, relation.tuples))
        out: set[Row] = set()
        for _subset, support, cover in self.representatives:
            phi = self._join_over(support, cover)
            ordered = phi.reorder(attributes)
            for row in ordered.tuples:
                if row in out:
                    continue
                satisfied = sum(
                    1
                    for cols, members in membership
                    if tuple(row[i] for i in cols) in members
                )
                if satisfied >= need:
                    out.add(row)
        return Relation(name, attributes, out)

    def bound(self) -> float:
        """Theorem 7.6's bound ``sum_{S in C*} LPOpt(S)``."""
        total = 0.0
        for subset, _support, cover in self.representatives:
            sub = self.query.hypergraph.subhypergraph(sorted(subset))
            sizes = {eid: len(self.query.relation(eid)) for eid in subset}
            total += agm_bound(sub, sizes, cover)
        return total

    def _join_over(
        self, support: frozenset[str], cover: FractionalCover
    ) -> Relation:
        """``phi_T``: Algorithm 2 over the support relations with the
        optimal vertex ``x*_S`` projected to ``T`` (Algorithm 6, line 6)."""
        relations = [self.query.relation(eid) for eid in sorted(support)]
        sub_query = JoinQuery(relations)
        return NPRRJoin(
            sub_query, cover=cover.restrict(support)
        ).execute("phi")


def relaxed_join(
    query: JoinQuery, relaxation: int, name: str = "Qr"
) -> Relation:
    """One-shot convenience wrapper for Algorithm 6."""
    return RelaxedJoin(query, relaxation).execute(name)


def relaxed_join_reference(
    query: JoinQuery, relaxation: int, name: str = "Qr"
) -> Relation:
    """Definition 7.4 evaluated literally (test oracle).

    Unions the naive joins over every minimal candidate set.  Exponential
    and slow — use only to validate :class:`RelaxedJoin` on small inputs.
    """
    from repro.baselines.naive import naive_join

    attributes = query.attributes
    rows: set[Row] = set()
    for subset in minimal_candidate_sets(query, relaxation):
        sub_query = JoinQuery(
            [query.relation(eid) for eid in sorted(subset)]
        )
        joined = naive_join(sub_query).reorder(attributes)
        rows.update(joined.tuples)
    return Relation(name, attributes, rows)


def _check_relaxation(relaxation: int, m: int) -> None:
    if not 0 <= relaxation <= m:
        raise QueryError(
            f"relaxation must satisfy 0 <= r <= {m}, got {relaxation}"
        )


def expected_bound_terms(
    query: JoinQuery, relaxation: int
) -> list[tuple[frozenset[str], float]]:
    """(support, LPOpt) per C* class — observability for tests/benches."""
    join = RelaxedJoin(query, relaxation)
    terms = []
    for subset, support, cover in join.representatives:
        sub = query.hypergraph.subhypergraph(sorted(subset))
        sizes = {eid: len(query.relation(eid)) for eid in subset}
        terms.append((support, agm_bound(sub, sizes, cover)))
    return terms
