"""Full conjunctive queries (Section 7.3): constants, repeated variables,
repeated subgoals — reduced to a natural join.

A full conjunctive query ``R(x_0) <- R_{i_1}(u_1) and ... and R_{i_m}(u_m)``
may repeat a relation across subgoals, repeat a variable inside a subgoal,
and use constants.  The paper's *reduction* builds, per subgoal, a new
relation in one scan: keep tuples satisfying the constants and the repeated
variables, project to the distinct variables.  The reduced query is a plain
natural join over a **multiset** hypergraph (two subgoals over the same
variables stay distinct edges), which Algorithm 2 processes worst-case
optimally — giving worst-case optimal evaluation for all full conjunctive
queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.database import Database
from repro.relations.relation import Relation


@dataclass(frozen=True)
class Var:
    """A query variable (identified by name)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant term (a selection)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


Term = Var | Const


@dataclass(frozen=True)
class Atom:
    """One subgoal ``R(t_1, ..., t_k)``."""

    relation: str
    terms: tuple[Term, ...]

    def variables(self) -> list[str]:
        """Distinct variable names, in order of first occurrence."""
        seen: list[str] = []
        for term in self.terms:
            if isinstance(term, Var) and term.name not in seen:
                seen.append(term.name)
        return seen

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


class ConjunctiveQuery:
    """A *full* conjunctive query: every body variable appears in the head.

    Parameters
    ----------
    head:
        Head variable names (a permutation of the body's variables —
        fullness is validated).
    body:
        The subgoals.
    """

    def __init__(self, head: Sequence[str], body: Sequence[Atom]) -> None:
        self.head = tuple(head)
        self.body = tuple(body)
        if not self.body:
            raise QueryError("a conjunctive query needs at least one subgoal")
        if len(set(self.head)) != len(self.head):
            raise QueryError(f"duplicate head variables in {self.head!r}")
        body_vars: set[str] = set()
        for atom in self.body:
            body_vars.update(atom.variables())
        head_vars = set(self.head)
        if head_vars != body_vars:
            missing = body_vars - head_vars
            extra = head_vars - body_vars
            raise QueryError(
                "query is not full: "
                + (f"body variables {sorted(missing)} missing from head; " if missing else "")
                + (f"head variables {sorted(extra)} not in body" if extra else "")
            )

    def __str__(self) -> str:
        body = " AND ".join(str(a) for a in self.body)
        return f"Q({', '.join(self.head)}) <- {body}"

    # -- the reduction ---------------------------------------------------------

    def reduce(self, database: Database) -> JoinQuery:
        """The paper's reduced query: one scan per subgoal.

        Each subgoal becomes a fresh relation (named ``{rel}@{index}`` so
        repeated subgoals stay distinct edges) holding the tuples that
        satisfy its constants and repeated variables, projected onto its
        distinct variables and renamed to variable names.
        """
        derived: list[Relation] = []
        for index, atom in enumerate(self.body):
            source = database[atom.relation]
            if len(atom.terms) != len(source.attributes):
                raise QueryError(
                    f"subgoal {atom} has {len(atom.terms)} terms but "
                    f"relation {atom.relation!r} has arity "
                    f"{len(source.attributes)}"
                )
            variables = atom.variables()
            # First column position of each distinct variable.
            first_pos: dict[str, int] = {}
            for pos, term in enumerate(atom.terms):
                if isinstance(term, Var) and term.name not in first_pos:
                    first_pos[term.name] = pos
            rows = []
            for row in source.tuples:
                if self._matches(atom, row):
                    rows.append(
                        tuple(row[first_pos[v]] for v in variables)
                    )
            derived.append(
                Relation(f"{atom.relation}@{index}", tuple(variables), rows)
            )
        return JoinQuery(derived)

    @staticmethod
    def _matches(atom: Atom, row: tuple) -> bool:
        bound: dict[str, Any] = {}
        for term, value in zip(atom.terms, row):
            if isinstance(term, Const):
                if value != term.value:
                    return False
            else:
                existing = bound.get(term.name, _UNBOUND)
                if existing is _UNBOUND:
                    bound[term.name] = value
                elif existing != value:
                    return False
        return True

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, database: Database, name: str = "Q") -> Relation:
        """Reduce, run Algorithm 2, and order columns by the head."""
        reduced = self.reduce(database)
        result = NPRRJoin(reduced).execute(name)
        return result.reorder(self.head).with_name(name)


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()
