"""The 3SAT-to-join reduction behind Section 7.1's impossibility result.

The paper shows that no join algorithm can be *instance optimal*
(``poly(|q|, |q(I)|, |I|)``) unless NP = RP, by reducing from 3-UniqueSAT:
each clause ``C_j`` becomes a relation over its variables holding the seven
satisfying assignments, and the formula is satisfiable iff the full join is
non-empty.

We implement the reduction both as an executable artifact of the proof and
as a demonstration example: a worst-case optimal join *is* a (worst-case
bounded) SAT enumerator.  Clauses use DIMACS conventions: a clause is a
tuple of non-zero ints, where ``3`` means variable 3 positive and ``-3``
negated.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation

Clause = tuple[int, ...]


def clause_relation(clause: Clause, index: int) -> Relation:
    """The relation of one clause: every assignment to its variables except
    the single falsifying one."""
    if not clause or any(lit == 0 for lit in clause):
        raise QueryError(f"clause {clause!r} must hold non-zero literals")
    variables: list[int] = []
    for literal in clause:
        var = abs(literal)
        if var not in variables:
            variables.append(var)
    attributes = tuple(f"x{v}" for v in variables)
    rows = []
    for bits in itertools.product((0, 1), repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        satisfied = any(
            (assignment[abs(lit)] == 1) == (lit > 0) for lit in clause
        )
        if satisfied:
            rows.append(bits)
    return Relation(f"C{index}", attributes, rows)


def formula_to_query(clauses: Sequence[Clause]) -> JoinQuery:
    """The full join query of the reduction (one relation per clause).

    Variables appearing in no clause are unconstrained and simply absent
    from the query (they would multiply the answer set by 2 each).
    """
    if not clauses:
        raise QueryError("formula needs at least one clause")
    return JoinQuery(
        [clause_relation(clause, j) for j, clause in enumerate(clauses)]
    )


def satisfying_assignments(clauses: Sequence[Clause]) -> Relation:
    """All satisfying assignments of the CNF, via Algorithm 2.

    Output columns are ``x<i>`` for every variable occurring in the
    formula; each row is a satisfying 0/1 assignment.
    """
    query = formula_to_query(clauses)
    return NPRRJoin(query).execute("SAT")


def is_satisfiable(clauses: Sequence[Clause]) -> bool:
    """True iff the CNF has a satisfying assignment."""
    return len(satisfying_assignments(clauses)) > 0


def count_models(clauses: Sequence[Clause]) -> int:
    """Number of satisfying assignments over the occurring variables."""
    return len(satisfying_assignments(clauses))


def formula_variables(clauses: Iterable[Clause]) -> list[int]:
    """Distinct variables of a CNF, ascending."""
    return sorted({abs(lit) for clause in clauses for lit in clause})
