"""Algorithm 1: the worst-case optimal join for Loomis-Whitney instances.

A *Loomis-Whitney (LW) instance* (Section 4) joins ``n`` relations whose
attribute sets are all the distinct ``(n-1)``-subsets of an ``n``-attribute
universe.  Theorem 4.1: Algorithm 1 computes the join in
``O(n^2 (prod_e N_e)^{1/(n-1)} + n^2 sum_e N_e)`` — linear in the LW bound.

The algorithm builds a binary tree whose leaves are the attributes; each
node ``x`` carries ``label(x)`` (= ``V`` minus the leaves under ``x``) and
computes two sets bottom-up:

* ``C(x)`` — candidate *full* output tuples accumulated so far;
* ``D(x)`` — a relation on ``label(x)`` of join keys whose expansion was
  postponed because it might blow the size budget
  ``P = (prod_e N_e)^{1/(n-1)}``.

The heavy/light split is the ``G`` test of line 5:
``t in F`` is *light* when ``|D_L[t]| + 1 <= ceil(P / |D_R|)``; light keys
are expanded now (the restricted join ``D_L join_G D_R``), heavy keys are
pushed into ``D(x)`` for an ancestor to handle.  A final pruning pass keeps
exactly the tuples whose every projection is present in its relation.

:func:`triangle_join` is Example 4.2's standalone specialization for
``R(A,B) join S(B,C) join T(A,C)`` with the threshold
``tau = sqrt(|R| |T| / |S|)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation, Row


@dataclass
class _LWNode:
    """A node of Algorithm 1's binary attribute tree."""

    leaves: tuple[str, ...]          # attributes below this node
    label: tuple[str, ...]           # V minus leaves, in universe order
    left: "_LWNode | None" = None
    right: "_LWNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class LWJoin:
    """Executor for Algorithm 1 on one LW instance.

    Parameters
    ----------
    query:
        A query whose hypergraph is an LW instance (checked).
    """

    def __init__(self, query: JoinQuery) -> None:
        if not query.is_lw_instance():
            raise QueryError(
                "Algorithm 1 requires a Loomis-Whitney instance: edges must "
                "be all (n-1)-subsets of the attributes"
            )
        self.query = query
        self.universe = query.attributes
        # Map each attribute v to the relation on V \ {v}.
        self._omitting: dict[str, Relation] = {}
        universe_set = set(self.universe)
        for relation in query.relations.values():
            omitted = universe_set - relation.attribute_set
            (vertex,) = omitted
            self._omitting[vertex] = relation
        # The size budget P with P^{n-1} = prod_e N_e, kept exact via the
        # integer product; comparisons against P are done in integer space.
        self._size_product = 1
        for relation in query.relations.values():
            self._size_product *= len(relation)
        self.tree = _build_label_tree(self.universe)

    # -- public API ---------------------------------------------------------

    def execute(self, name: str = "J") -> Relation:
        """Run Algorithm 1 and return the (pruned) join."""
        if self._size_product == 0:
            return self.query.empty_output(name)
        candidates, _postponed = self._lw(self.tree)
        pruned = self._prune(candidates)
        return Relation(name, self.universe, pruned).reorder(
            self.query.attributes
        )

    def iter_join(self) -> Iterator[Row]:
        """Yield the join's rows in the query's attribute order.

        Algorithm 1 is inherently blocking (the final pruning pass needs
        every candidate), so this materializes internally and then
        streams; it exists for interface parity with the engine's
        streaming executors.
        """
        yield from self.execute().tuples

    def bound(self) -> float:
        """The LW bound ``P = (prod_e N_e)^{1/(n-1)}``."""
        n = len(self.universe)
        return self._size_product ** (1.0 / (n - 1))

    # -- Algorithm 1 -----------------------------------------------------------

    def _lw(self, node: _LWNode) -> tuple[list[Row], Relation]:
        """The recursive procedure ``LW(x)``; returns ``(C, D)``.

        ``C`` is a list of full tuples over the universe (in universe
        order); ``D`` is a relation on ``label(x)``.
        """
        if node.is_leaf:
            (vertex,) = node.leaves
            relation = self._omitting[vertex]
            # D(leaf) = R_{V \ {v}}, reordered to the label's column order.
            return [], relation.reorder(node.label)

        assert node.left is not None and node.right is not None
        c_left, d_left = self._lw(node.left)
        c_right, d_right = self._lw(node.right)

        label = node.label
        left_cols = node.left.label
        right_cols = node.right.label
        # Group both D relations by their label(x)-projection.
        left_key_idx = [left_cols.index(a) for a in label]
        right_key_idx = [right_cols.index(a) for a in label]
        left_groups = _group_by(d_left.tuples, left_key_idx)
        right_groups = _group_by(d_right.tuples, right_key_idx)

        is_root = not label
        if is_root:
            light_keys = [()] if left_groups and right_groups else []
        else:
            # F = pi_label(D_L) cap pi_label(D_R);  G = light keys of F.
            if len(d_right) == 0:
                light_keys = []
                heavy_keys: list[Row] = []
            else:
                threshold = _ceil_budget(
                    self._size_product, len(self.universe) - 1, len(d_right)
                )
                light_keys = []
                heavy_keys = []
                for key, rows in left_groups.items():
                    if key not in right_groups:
                        continue
                    if len(rows) + 1 <= threshold:
                        light_keys.append(key)
                    else:
                        heavy_keys.append(key)

        # C = (D_L join_G D_R) cup C_L cup C_R  (restricted to light keys).
        out_map = self._merge_map(left_cols, right_cols)
        candidates = list(c_left)
        candidates.extend(c_right)
        for key in light_keys:
            for dl in left_groups[key]:
                for dr in right_groups.get(key, ()):
                    candidates.append(
                        tuple(
                            dl[i] if side == 0 else dr[i]
                            for side, i in out_map
                        )
                    )
        if is_root:
            postponed = Relation("D", (), ())
        else:
            postponed = Relation("D", label, heavy_keys if len(d_right) else [])
        return candidates, postponed

    def _merge_map(
        self, left_cols: Sequence[str], right_cols: Sequence[str]
    ) -> list[tuple[int, int]]:
        """For each universe attribute: (source side, column index)."""
        left_pos = {a: i for i, a in enumerate(left_cols)}
        right_pos = {a: i for i, a in enumerate(right_cols)}
        out = []
        for attribute in self.universe:
            if attribute in left_pos:
                out.append((0, left_pos[attribute]))
            else:
                out.append((1, right_pos[attribute]))
        return out

    def _prune(self, candidates: list[Row]) -> set[Row]:
        """Keep tuples whose every (n-1)-projection is in its relation."""
        checks = []
        for vertex, relation in self._omitting.items():
            cols = [
                i
                for i, attribute in enumerate(self.universe)
                if attribute != vertex
            ]
            ordered = relation.reorder(
                tuple(self.universe[i] for i in cols)
            )
            checks.append((cols, ordered.tuples))
        kept: set[Row] = set()
        for row in candidates:
            if all(
                tuple(row[i] for i in cols) in members
                for cols, members in checks
            ):
                kept.add(row)
        return kept


def _build_label_tree(universe: Sequence[str]) -> _LWNode:
    """A balanced binary tree over the attributes, with labels
    ``label(x) = V minus leaves(x)`` (computed as intersections, per the
    paper's inductive definition)."""
    universe = tuple(universe)

    def build(leaves: tuple[str, ...]) -> _LWNode:
        label = tuple(a for a in universe if a not in leaves)
        node = _LWNode(leaves=leaves, label=label)
        if len(leaves) > 1:
            mid = len(leaves) // 2
            node.left = build(leaves[:mid])
            node.right = build(leaves[mid:])
        return node

    return build(universe)


def _group_by(rows, key_idx: Sequence[int]) -> dict[Row, list[Row]]:
    groups: dict[Row, list[Row]] = {}
    for row in rows:
        groups.setdefault(tuple(row[i] for i in key_idx), []).append(row)
    return groups


def _ceil_budget(size_product: int, root_degree: int, divisor: int) -> int:
    """``ceil(P / divisor)`` with ``P = size_product^(1/root_degree)``,
    computed exactly in integer space: the smallest ``c >= 1`` with
    ``(c * divisor)^root_degree >= size_product``."""
    if divisor <= 0:
        raise ValueError("divisor must be positive")
    guess = int(round(size_product ** (1.0 / root_degree) / divisor))
    c = max(1, guess - 2)
    while (c * divisor) ** root_degree < size_product:
        c += 1
    while c > 1 and ((c - 1) * divisor) ** root_degree >= size_product:
        c -= 1
    return c


def lw_join(query: JoinQuery, name: str = "J") -> Relation:
    """One-shot convenience wrapper for Algorithm 1."""
    return LWJoin(query).execute(name)


def triangle_join(
    r: Relation, s: Relation, t: Relation, name: str = "J"
) -> Relation:
    """Example 4.2: the heavy/light triangle join in ``O(sqrt(|R||S||T|))``.

    ``r``, ``s``, ``t`` must form a triangle: ``r`` and ``s`` share exactly
    one attribute (the join key ``B``), ``s`` and ``t`` share one (``C``),
    and ``t`` and ``r`` share one (``A``).  The algorithm splits ``B``
    values of ``r`` into *heavy* (fan-out above ``tau = sqrt(|r||t|/|s|)``)
    and *light*; heavy keys are paired with all of ``t`` and filtered, light
    tuples are joined through ``s`` and filtered — both sides cost
    ``O(sqrt(|r||s||t|))``.
    """
    shared_rs = r.attribute_set & s.attribute_set
    shared_st = s.attribute_set & t.attribute_set
    shared_tr = t.attribute_set & r.attribute_set
    if not (
        len(shared_rs) == len(shared_st) == len(shared_tr) == 1
        and len(r.attributes) == len(s.attributes) == len(t.attributes) == 2
    ):
        raise QueryError(
            "triangle_join expects binary relations R(A,B), S(B,C), T(A,C)"
        )
    (attr_b,) = shared_rs
    (attr_c,) = shared_st
    (attr_a,) = shared_tr
    if len({attr_a, attr_b, attr_c}) != 3:
        raise QueryError("triangle_join expects three distinct attributes")
    r2 = r.reorder((attr_a, attr_b))
    s2 = s.reorder((attr_b, attr_c))
    t2 = t.reorder((attr_a, attr_c))
    if not (len(r2) and len(s2) and len(t2)):
        return Relation(name, (attr_a, attr_b, attr_c))

    tau = (len(r2) * len(t2) / len(s2)) ** 0.5
    r_by_b: dict[object, list[Row]] = {}
    for a_val, b_val in r2.tuples:
        r_by_b.setdefault(b_val, []).append((a_val, b_val))
    s_by_b: dict[object, list[Row]] = {}
    for b_val, c_val in s2.tuples:
        s_by_b.setdefault(b_val, []).append((b_val, c_val))
    r_set = r2.tuples
    s_set = s2.tuples
    t_set = t2.tuples

    out: set[Row] = set()
    for b_val, r_rows in r_by_b.items():
        if len(r_rows) > tau:
            # Heavy key: pair with every tuple of T, filter by R and S.
            for a_val, c_val in t_set:
                if (a_val, b_val) in r_set and (b_val, c_val) in s_set:
                    out.add((a_val, b_val, c_val))
        else:
            # Light tuples: expand through S, filter by T.
            for a_val, _ in r_rows:
                for _, c_val in s_by_b.get(b_val, ()):
                    if (a_val, c_val) in t_set:
                        out.add((a_val, b_val, c_val))
    return Relation(name, (attr_a, attr_b, attr_c), out)
