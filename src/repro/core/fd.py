"""Simple functional dependencies (Section 7.3): FD-aware join processing.

A *simple functional dependency* is a triple ``e.u -> e.v`` with
``u, v in e``: any two tuples of ``R_e`` agreeing on ``u`` agree on ``v``.
Given a set ``Gamma`` of FDs, the paper's algorithm:

1. builds the FD digraph ``G(Gamma)`` on the attributes,
2. expands every relation ``R_e`` to ``R'_{e'}`` where ``e'`` is the
   closure of ``e`` under reachability in ``G(Gamma)``, walking the graph
   breadth-first and looking derived values up in the relations that
   *define* each FD,
3. solves the cover LP on the expanded hypergraph and runs Algorithm 2.

The expansion can shrink the AGM bound dramatically — the paper's
``k``-fan-out example drops from ``N^k`` to ``N^2`` — because closures
overlap much more than the original edges did.

Expansion semantics: while deriving ``v`` from ``u`` through the FD
``f.u -> f.v``, a tuple whose ``u``-value does not occur in ``pi_u(R_f)``
is dropped.  This preserves the join: every output tuple must embed into
``R_f`` (it is one of the joined relations), so its ``u``-value occurs
there.  When several FD paths could derive the same attribute, the first
one (in BFS order) wins; a tuple for which two paths would disagree can
never appear in the full join, so the choice is harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.errors import FunctionalDependencyError, QueryError
from repro.hypergraph.agm import best_agm_bound
from repro.relations.relation import Relation, Value


@dataclass(frozen=True)
class FunctionalDependency:
    """``edge.source -> edge.target``: within relation ``edge``, the value
    of ``source`` determines the value of ``target``."""

    edge: str
    source: str
    target: str

    def __str__(self) -> str:
        return f"{self.edge}.{self.source} -> {self.edge}.{self.target}"


def validate_fds(
    query: JoinQuery, fds: Sequence[FunctionalDependency]
) -> None:
    """Check that each FD refers to a real relation and its attributes, and
    that the data actually satisfies it."""
    for fd in fds:
        relation = query.relation(fd.edge)
        for attribute in (fd.source, fd.target):
            if attribute not in relation.attribute_set:
                raise QueryError(
                    f"FD {fd} refers to attribute {attribute!r} not in "
                    f"relation {fd.edge!r}"
                )
        _value_map(relation, fd)  # raises on violations


def fd_graph(
    fds: Iterable[FunctionalDependency],
) -> dict[str, list[FunctionalDependency]]:
    """``G(Gamma)`` as an adjacency list: source attribute -> FDs out of it."""
    graph: dict[str, list[FunctionalDependency]] = {}
    for fd in fds:
        graph.setdefault(fd.source, []).append(fd)
    return graph


def closure(
    attributes: Iterable[str], fds: Iterable[FunctionalDependency]
) -> frozenset[str]:
    """All attributes reachable from ``attributes`` in ``G(Gamma)``."""
    graph = fd_graph(fds)
    reached = set(attributes)
    frontier = list(reached)
    while frontier:
        attribute = frontier.pop()
        for fd in graph.get(attribute, ()):
            if fd.target not in reached:
                reached.add(fd.target)
                frontier.append(fd.target)
    return frozenset(reached)


def expand_relation(
    relation: Relation,
    query: JoinQuery,
    fds: Sequence[FunctionalDependency],
) -> Relation:
    """``R'_{e'}``: extend ``relation`` to the closure of its attributes.

    Walks ``G(Gamma)`` breadth-first from the relation's attributes; each
    step appends one derived column, with values looked up in the FD's
    defining relation.  Tuples whose source value is absent from the
    defining relation (or whose derivations conflict) are dropped — they
    cannot participate in the full join (see module docstring).
    """
    graph = fd_graph(fds)
    attributes = list(relation.attributes)
    rows = [list(row) for row in relation.tuples]
    have = set(attributes)
    frontier = list(attributes)
    while frontier:
        attribute = frontier.pop(0)
        for fd in graph.get(attribute, ()):
            if fd.target in have:
                continue
            mapping = _value_map(query.relation(fd.edge), fd)
            src_pos = attributes.index(attribute)
            kept = []
            for row in rows:
                derived = mapping.get(row[src_pos], _MISSING)
                if derived is _MISSING:
                    continue
                kept.append(row + [derived])
            rows = kept
            attributes.append(fd.target)
            have.add(fd.target)
            frontier.append(fd.target)
    return Relation(
        relation.name, tuple(attributes), (tuple(r) for r in rows)
    )


def expand_query(
    query: JoinQuery, fds: Sequence[FunctionalDependency]
) -> JoinQuery:
    """The FD-expanded query: every relation grown to its closure."""
    validate_fds(query, fds)
    return JoinQuery(
        [
            expand_relation(relation, query, fds)
            for relation in query.relations.values()
        ]
    )


def fd_aware_join(
    query: JoinQuery,
    fds: Sequence[FunctionalDependency],
    name: str = "J",
) -> Relation:
    """Expand under the FDs, then run Algorithm 2 on the expanded query.

    The result equals the plain join of the original query (the expansion
    preserves it) but is computed within the expanded — usually far
    smaller — AGM bound.
    """
    expanded = expand_query(query, fds)
    result = NPRRJoin(expanded).execute(name)
    return result.reorder(query.attributes)


def fd_aware_bound(
    query: JoinQuery, fds: Sequence[FunctionalDependency]
) -> tuple[float, float]:
    """(FD-unaware bound, FD-aware bound) — the paper's ``N^k`` vs ``N^2``.

    Both are optimal AGM bounds; the second is computed on the expanded
    hypergraph with the expanded relation sizes.
    """
    _cover, unaware = best_agm_bound(query.hypergraph, query.sizes())
    expanded = expand_query(query, fds)
    _cover2, aware = best_agm_bound(expanded.hypergraph, expanded.sizes())
    return unaware, aware


class _Missing:
    """Sentinel distinguishing 'absent' from a stored ``None`` value."""

    __slots__ = ()


_MISSING = _Missing()


def _value_map(
    relation: Relation, fd: FunctionalDependency
) -> dict[Value, Value]:
    """The function ``u-value -> v-value`` defined by ``R_e``.

    Raises :class:`~repro.errors.FunctionalDependencyError` when the data
    violates the dependency.
    """
    src = relation.position(fd.source)
    dst = relation.position(fd.target)
    mapping: dict[Value, Value] = {}
    for row in relation.tuples:
        key, value = row[src], row[dst]
        existing = mapping.get(key, _MISSING)
        if existing is _MISSING:
            mapping[key] = value
        elif existing != value:
            raise FunctionalDependencyError(
                f"{fd} violated: {fd.source}={key!r} maps to both "
                f"{existing!r} and {value!r}"
            )
    return mapping
