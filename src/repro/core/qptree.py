"""Query-plan trees and the total attribute order (Algorithms 3 and 4).

Algorithm 3 builds a binary *query-plan tree* (QP-tree) from a fixed edge
order ``e_1, ..., e_m``: each node carries a label ``k`` (the subproblem
joins edges ``e_1..e_k``, with ``e_k`` the *anchor*) and a universe
``univ(u) subseteq V`` (the attributes the subproblem joins over).  An
internal node splits its universe by the anchor:
``univ(lc) = U \\ e_k`` and ``univ(rc) = U cap e_k``.

Algorithm 4 linearizes the tree's leaves into the *total order* of all
attributes, which satisfies Proposition 5.5:

* **(TO1)** every node's universe is consecutive in the total order;
* **(TO2)** for an internal node, ``S cup univ(lc(u))`` (where ``S`` is
  everything preceding ``univ(u)``) is exactly the set of attributes
  preceding ``univ(rc(u))``.

These two properties are what let `Recursive-Join` represent intermediate
tuples as plain total-order prefixes and reuse trie walks.

Two corner cases the paper's pseudocode leaves implicit are handled
explicitly (they arise only in subtrees `Recursive-Join` never visits, but
the total order must still cover every attribute):

* an internal node may have *both* children nil (its universe sits inside
  the anchor but touches no earlier edge) — we print its universe directly;
* when ``lc`` is nil but ``U \\ e_k`` is non-empty, those orphaned
  attributes are printed before the right subtree, mirroring the
  ``rc = nil`` case of Algorithm 4.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph


class QPNode:
    """One node of a query-plan tree.

    Attributes
    ----------
    label:
        The index ``k``: this subproblem involves edges ``e_1 .. e_k`` and
        is anchored at ``e_k``.
    universe:
        ``univ(u)``, the attributes this subproblem joins over.
    left, right:
        Children (either may be ``None``).  ``univ(left) = U \\ e_k`` and
        ``univ(right) = U cap e_k``.
    is_leaf:
        True when Algorithm 3's line-4 condition was *false*, i.e.
        ``k == 1`` or ``U subseteq e_i`` for every ``i in [k]``.  This is the
        case Procedure 5 handles with its leaf code.  An internal node whose
        children both came back nil is **not** a leaf in this sense:
        Procedure 5 reaches it (if ever) only with ``y_{e_k} >= 1`` and
        handles it through case b.
    """

    __slots__ = ("label", "universe", "left", "right", "is_leaf")

    def __init__(self, label: int, universe: frozenset[str], is_leaf: bool) -> None:
        self.label = label
        self.universe = universe
        self.is_leaf = is_leaf
        self.left: QPNode | None = None
        self.right: QPNode | None = None

    def __repr__(self) -> str:
        return f"QPNode(k={self.label}, univ={{{','.join(sorted(self.universe))}}})"


class QPTree:
    """A query-plan tree plus the derived total attribute order.

    Parameters
    ----------
    hypergraph:
        The query hypergraph.
    edge_order:
        The fixed order ``e_1, ..., e_m`` (Algorithm 3, line 1).  Defaults
        to the hypergraph's edge order.  The root is anchored at the *last*
        edge ``e_m``, exactly as in Procedure `build-tree`.
    """

    __slots__ = ("hypergraph", "edge_order", "root", "total_order", "_rank")

    def __init__(
        self,
        hypergraph: Hypergraph,
        edge_order: Sequence[str] | None = None,
    ) -> None:
        order = tuple(edge_order) if edge_order is not None else hypergraph.edge_ids
        if set(order) != set(hypergraph.edge_ids) or len(order) != len(
            hypergraph.edges
        ):
            raise QueryError(
                f"edge order {order!r} is not a permutation of "
                f"{hypergraph.edge_ids!r}"
            )
        if not hypergraph.covers_vertices():
            raise QueryError(
                "cannot build a QP-tree: some attribute is in no relation"
            )
        self.hypergraph = hypergraph
        self.edge_order = order
        edge_sets = [hypergraph.edges[eid] for eid in order]
        root = _build_tree(
            frozenset(hypergraph.vertices), len(order), edge_sets
        )
        if root is None:
            raise QueryError("QP-tree construction produced no root")
        self.root = root
        # Deterministic "arbitrary order" inside leaves: input vertex order.
        vertex_rank = {v: i for i, v in enumerate(hypergraph.vertices)}
        printed: list[str] = []
        _print_attribs(root, vertex_rank, printed)
        if set(printed) != set(hypergraph.vertices) or len(printed) != len(
            hypergraph.vertices
        ):
            raise QueryError(
                f"total order {printed!r} is not a permutation of the "
                f"attributes {hypergraph.vertices!r} (internal error)"
            )
        self.total_order = tuple(printed)
        self._rank = {v: i for i, v in enumerate(printed)}

    # -- helpers used by Recursive-Join ------------------------------------------

    def anchor(self, node: QPNode) -> str:
        """The anchor edge id ``e_k`` of a node."""
        return self.edge_order[node.label - 1]

    def rank(self, attribute: str) -> int:
        """Position of an attribute in the total order."""
        return self._rank[attribute]

    def sort_by_total_order(self, attributes: Iterable[str]) -> tuple[str, ...]:
        """Sort attributes by their total-order position."""
        return tuple(sorted(attributes, key=self._rank.__getitem__))

    def relation_order(self, edge_id: str) -> tuple[str, ...]:
        """The trie level order for one relation: its attributes sorted by
        the total order (Section 5.3.2)."""
        return self.sort_by_total_order(self.hypergraph.edges[edge_id])

    # -- Proposition 5.5 ------------------------------------------------------------

    def check_to1(self) -> bool:
        """(TO1): every node's universe is consecutive in the total order."""
        for node in self.nodes():
            ranks = sorted(self._rank[v] for v in node.universe)
            if ranks and ranks[-1] - ranks[0] + 1 != len(ranks):
                return False
        return True

    def check_to2(self) -> bool:
        """(TO2): for every internal node with two children,
        ``S cup univ(lc)`` equals the set of attributes preceding
        ``univ(rc)`` in the total order."""
        for node in self.nodes():
            if node.left is None or node.right is None:
                continue
            if not node.right.universe:
                continue
            preceding_u = self._attributes_preceding(node.universe)
            preceding_rc = self._attributes_preceding(node.right.universe)
            if preceding_u | node.left.universe != preceding_rc:
                return False
        return True

    def _attributes_preceding(self, universe: frozenset[str]) -> set[str]:
        first = min(self._rank[v] for v in universe)
        return set(self.total_order[:first])

    # -- traversal and display ---------------------------------------------------------

    def nodes(self) -> list[QPNode]:
        """All nodes, preorder."""
        out: list[QPNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)
        return out

    def render(self) -> str:
        """ASCII rendering in the style of the paper's Figures 1 and 2."""
        lines: list[str] = []

        def visit(node: QPNode | None, prefix: str, tag: str) -> None:
            if node is None:
                return
            universe = ",".join(sorted(node.universe, key=self._rank.__getitem__))
            anchor = self.edge_order[node.label - 1]
            kind = "leaf" if node.is_leaf else f"anchor={anchor}"
            lines.append(f"{prefix}{tag}[k={node.label}] univ={{{universe}}} {kind}")
            child_prefix = prefix + ("    " if not tag else "    ")
            visit(node.left, child_prefix, "L: ")
            visit(node.right, child_prefix, "R: ")

        visit(self.root, "", "")
        lines.append(f"total order: {', '.join(self.total_order)}")
        return "\n".join(lines)


def _build_tree(
    universe: frozenset[str],
    k: int,
    edge_sets: Sequence[frozenset[str]],
) -> QPNode | None:
    """Procedure `build-tree(U, k)` of Algorithm 3, verbatim."""
    if all(not (edge_sets[i] & universe) for i in range(k)):
        return None
    split = k > 1 and any(not universe <= edge_sets[i] for i in range(k))
    node = QPNode(k, universe, is_leaf=not split)
    if split:
        anchor = edge_sets[k - 1]
        node.left = _build_tree(universe - anchor, k - 1, edge_sets)
        node.right = _build_tree(universe & anchor, k - 1, edge_sets)
    return node


def _print_attribs(
    node: QPNode,
    vertex_rank: dict[str, int],
    out: list[str],
) -> None:
    """Procedure `print-attribs` of Algorithm 4 (with the two robustness
    cases documented in the module docstring)."""

    def emit(attributes: Iterable[str]) -> None:
        out.extend(sorted(attributes, key=vertex_rank.__getitem__))

    if node.is_leaf or (node.left is None and node.right is None):
        emit(node.universe)
        return
    if node.left is None:
        assert node.right is not None
        # Orphan attributes (in no earlier edge) go before the right block.
        emit(node.universe - node.right.universe)
        _print_attribs(node.right, vertex_rank, out)
        return
    if node.right is None:
        _print_attribs(node.left, vertex_rank, out)
        emit(node.universe - node.left.universe)
        return
    _print_attribs(node.left, vertex_rank, out)
    _print_attribs(node.right, vertex_rank, out)
