"""Subgraph pattern matching: the flagship WCOJ application, packaged.

Worst-case optimal joins became the engine of graph pattern matching
(EmptyHeaded, LogicBlox, Kuzu descend from this paper) because a pattern
query is a self-join of the edge table — precisely the cyclic, skew-prone
workload where binary plans lose.  This module provides that workflow
directly:

>>> edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
>>> matches = find_pattern(edges, [("x", "y"), ("y", "z"), ("z", "x")])
>>> sorted(matches.tuples)  # the directed triangle, all rotations
[(0, 1, 2), (1, 2, 0), (2, 0, 1)]

The pattern is a list of directed edges over variable names; each pattern
edge becomes one renamed copy of the data relation (a multiset hyperedge,
Section 7.3), and the join runs through any of the library's worst-case
optimal engines.  The AGM bound specializes to the known pattern bounds:
``|E|^{3/2}`` for triangles, ``|E|^2`` for 4-cycles, and so on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.agm import best_agm_bound
from repro.relations.relation import Relation, Row

#: A pattern edge: a pair of variable names.
PatternEdge = tuple[str, str]


def pattern_query(
    edges: Iterable[Row] | Relation,
    pattern: Sequence[PatternEdge],
    edge_attributes: tuple[str, str] = ("src", "dst"),
) -> JoinQuery:
    """Build the self-join query matching ``pattern`` against ``edges``.

    Parameters
    ----------
    edges:
        The data graph: an iterable of (source, target) pairs, or an
        existing binary relation.
    pattern:
        Directed pattern edges over variable names, e.g.
        ``[("x","y"), ("y","z"), ("z","x")]`` for the directed triangle.
    edge_attributes:
        Attribute names of a supplied edge relation (ignored for raw
        pairs).
    """
    if isinstance(edges, Relation):
        if len(edges.attributes) != 2:
            raise QueryError(
                f"the data graph must be binary, got {edges.attributes!r}"
            )
        base = edges.reorder(
            edge_attributes if set(edge_attributes) == edges.attribute_set
            else edges.attributes
        )
    else:
        base = Relation("E", ("src", "dst"), edges)
    if not pattern:
        raise QueryError("a pattern needs at least one edge")
    relations = []
    for index, (src_var, dst_var) in enumerate(pattern):
        if src_var == dst_var:
            raise QueryError(
                f"pattern edge {index} is a self-loop ({src_var!r}); "
                "use select_equals on the edge relation instead"
            )
        renamed = base.rename(
            {base.attributes[0]: src_var, base.attributes[1]: dst_var}
        ).with_name(f"E{index}")
        relations.append(renamed)
    return JoinQuery(relations)


def find_pattern(
    edges: Iterable[Row] | Relation,
    pattern: Sequence[PatternEdge],
    algorithm: str = "generic",
    name: str = "Matches",
) -> Relation:
    """All homomorphic matches of ``pattern`` in the data graph.

    One output column per pattern variable (order of first appearance).
    Matches are *homomorphisms*: distinct variables may map to the same
    vertex; filter with ``.select`` for injective (isomorphic) matches.
    """
    # Imported here: repro.api imports repro.core, so a module-level import
    # would be circular.
    from repro.api import join as run_join

    query = pattern_query(edges, pattern)
    return run_join(query, algorithm=algorithm, name=name)


def count_pattern(
    edges: Iterable[Row] | Relation,
    pattern: Sequence[PatternEdge],
    algorithm: str = "generic",
) -> int:
    """Number of homomorphic matches."""
    return len(find_pattern(edges, pattern, algorithm=algorithm))


def pattern_bound(
    edges: Iterable[Row] | Relation,
    pattern: Sequence[PatternEdge],
) -> float:
    """The AGM bound on the number of matches (e.g. ``|E|^{3/2}`` for the
    triangle pattern)."""
    query = pattern_query(edges, pattern)
    _cover, bound = best_agm_bound(query.hypergraph, query.sizes())
    return bound


#: Common named patterns (directed).
TRIANGLE: tuple[PatternEdge, ...] = (("x", "y"), ("y", "z"), ("z", "x"))
SQUARE: tuple[PatternEdge, ...] = (
    ("x", "y"),
    ("y", "z"),
    ("z", "w"),
    ("w", "x"),
)
DIAMOND: tuple[PatternEdge, ...] = (
    ("x", "y"),
    ("x", "z"),
    ("y", "w"),
    ("z", "w"),
)
TWO_PATH: tuple[PatternEdge, ...] = (("x", "y"), ("y", "z"))
