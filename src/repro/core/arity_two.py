"""Theorem 7.3: joins of arity-<=2 relations in ``O(m prod_e N_e^{x_e})``.

Section 7.1 of the paper: when every relation has at most two attributes,
the query hypergraph is a graph and the fractional cover polyhedron has
*half-integral* vertices (Lemma 7.2): an optimal basic feasible solution
``x*`` has ``x*_e in {0, 1/2, 1}``, the weight-1 edges form vertex-disjoint
stars, and the weight-1/2 edges form vertex-disjoint odd cycles (disjoint
from the stars).  The algorithm is then:

1. solve the cover LP exactly and read off the half-integral vertex;
2. join each weight-1 component directly (star joins are size-bounded by
   the product of their relation sizes);
3. join each weight-1/2 odd cycle with the **Cycle Lemma** (Lemma 7.1) in
   ``O(m sqrt(prod_{e in C} N_e))`` — even cycles cross-product the lighter
   alternating class and filter; odd cycles build the paper's ``X / X_S /
   W / Y`` relations and finish with one bundled Loomis-Whitney triangle
   join (Example 4.2);
4. cross-product the component results and filter against every
   zero-weight relation.

The result has better *query* complexity (``O(m)`` data-complexity factor)
than Algorithm 2's ``O(mn)`` — the point of Theorem 7.3.
"""

from __future__ import annotations

import math
from fractions import Fraction
from collections.abc import Iterator, Sequence

from repro.core.lw import triangle_join
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.agm import optimal_fractional_cover
from repro.hypergraph.covers import FractionalCover
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.relation import Relation, Row


def is_half_integral(cover: FractionalCover) -> bool:
    """Lemma 7.2's vertex property: every weight is 0, 1/2, or 1."""
    allowed = {Fraction(0), Fraction(1, 2), Fraction(1)}
    return all(w in allowed for w in cover.weights.values())


def decompose_support(
    hypergraph: Hypergraph, cover: FractionalCover
) -> tuple[list[Hypergraph], list[Hypergraph], list[str]]:
    """Split a half-integral cover's support into its structural parts.

    Returns ``(weight-1 components, weight-1/2 components, zero edges)``.
    Per Lemma 7.2 the weight-1 components are stars and the weight-1/2
    components are odd cycles, vertex-disjoint from each other; callers can
    verify that with :meth:`Hypergraph.is_star` / :meth:`Hypergraph.is_cycle`.
    """
    ones = [eid for eid in hypergraph.edges if cover.get(eid) == 1]
    halves = [
        eid for eid in hypergraph.edges if cover.get(eid) == Fraction(1, 2)
    ]
    zeros = [eid for eid in hypergraph.edges if cover.get(eid) == 0]
    leftovers = (
        set(hypergraph.edges) - set(ones) - set(halves) - set(zeros)
    )
    if leftovers:
        raise QueryError(
            f"cover is not half-integral on edges {sorted(leftovers)}"
        )

    def components(edge_ids: list[str]) -> list[Hypergraph]:
        if not edge_ids:
            return []
        sub_edges = {eid: hypergraph.edges[eid] for eid in edge_ids}
        touched = sorted(
            {v for e in sub_edges.values() for v in e},
            key=hypergraph.vertices.index,
        )
        sub = Hypergraph(tuple(touched), sub_edges)
        return [c for c in sub.connected_components() if c.edges]

    return components(ones), components(halves), zeros


class ArityTwoJoin:
    """Executor for Theorem 7.3's algorithm.

    Parameters
    ----------
    query:
        A query whose relations all have one or two attributes.
    cover:
        Optionally, a half-integral cover to use; defaults to the exact LP
        vertex (half-integral by Lemma 7.2).
    """

    def __init__(
        self, query: JoinQuery, cover: FractionalCover | None = None
    ) -> None:
        if not query.hypergraph.is_graph():
            raise QueryError(
                "the arity-2 algorithm requires every relation to have at "
                "most two attributes"
            )
        self.query = query
        if cover is None:
            cover = optimal_fractional_cover(
                query.hypergraph, query.sizes()
            )
        cover.validate(query.hypergraph)
        if not is_half_integral(cover):
            raise QueryError(
                f"cover {cover!r} is not half-integral; exact LP vertices "
                "of graph cover polyhedra are (Lemma 7.2)"
            )
        self.cover = cover

    def execute(self, name: str = "J") -> Relation:
        """Run the decomposition join."""
        query = self.query
        if any(len(r) == 0 for r in query.relations.values()):
            return query.empty_output(name)
        ones, halves, zeros = decompose_support(query.hypergraph, self.cover)

        parts: list[Relation] = []
        for component in ones:
            joined = None
            for eid in component.edges:
                relation = query.relation(eid)
                joined = (
                    relation
                    if joined is None
                    else joined.natural_join(relation)
                )
            assert joined is not None
            parts.append(joined)
        for component in halves:
            order = component.is_cycle()
            if order is None:
                raise QueryError(
                    f"weight-1/2 component {component!r} is not a cycle; "
                    "Lemma 7.2 guarantees odd cycles for LP vertices"
                )
            relations = _cycle_relations(component, order, query)
            parts.append(cycle_join(relations, order))

        if not parts:
            raise QueryError("empty cover support (no relations to join)")
        result = parts[0]
        for part in parts[1:]:
            result = result.cross(part)
        # Zero-weight relations: their attributes are inside the support's
        # span (the support covers every vertex), so they act as filters.
        for eid in zeros:
            result = result.semijoin(query.relation(eid))
        return (
            result.with_name(name)
            .reorder(query.attributes)
        )

    def iter_join(self) -> Iterator[Row]:
        """Yield the join's rows in the query's attribute order.

        The decomposition join materializes its component results (cross
        products and semijoin filters are set-at-a-time), so this wraps
        :meth:`execute` for interface parity with the engine's streaming
        executors.
        """
        yield from self.execute().tuples

    def bound(self) -> float:
        """The AGM bound ``prod_e N_e^{x_e}`` under the chosen cover."""
        sizes = self.query.sizes()
        total = 0.0
        for eid, weight in self.cover.items():
            if weight and sizes[eid]:
                total += float(weight) * math.log(sizes[eid])
        return math.exp(total)


def _cycle_relations(
    component: Hypergraph, order: list[str], query: JoinQuery
) -> list[Relation]:
    """Relations of a cycle component, listed so that relation ``i`` is on
    ``{order[i], order[i+1]}`` (wrapping)."""
    k = len(order)
    wanted = [
        frozenset((order[i], order[(i + 1) % k])) for i in range(k)
    ]
    remaining = dict(component.edges)
    out: list[Relation] = []
    for target in wanted:
        eid = next(e for e, members in remaining.items() if members == target)
        del remaining[eid]
        out.append(query.relation(eid))
    return out


def cycle_join(
    relations: Sequence[Relation],
    vertex_order: Sequence[str],
    name: str = "J",
) -> Relation:
    """Lemma 7.1 (Cycle Lemma): join a cycle in ``O(m sqrt(prod N_e))``.

    ``relations[i]`` must be the relation on ``{vertex_order[i],
    vertex_order[i+1]}`` (indices wrapping around).
    """
    k = len(relations)
    if k != len(vertex_order) or k < 2:
        raise QueryError("cycle_join needs k >= 2 relations on a k-cycle")
    order = list(vertex_order)
    rels = [
        relations[i].reorder((order[i], order[(i + 1) % k]))
        for i in range(k)
    ]
    if any(len(r) == 0 for r in rels):
        return Relation(name, tuple(order))

    if k % 2 == 0:
        return _even_cycle_join(rels, order, name)
    if k == 3:
        return triangle_join(rels[0], rels[1], rels[2], name).reorder(
            tuple(order)
        ).with_name(name)
    return _odd_cycle_join(rels, order, name)


def _alternating_products(rels: Sequence[Relation], k: int) -> tuple[int, int]:
    """Size products of the two alternating edge classes e1,e3,... and
    e2,e4,... (1-based as in the paper; only the first ``2*floor(k/2)``
    edges participate for odd k)."""
    odd = 1
    even = 1
    for i in range(0, 2 * (k // 2), 2):
        odd *= len(rels[i])
    for i in range(1, 2 * (k // 2), 2):
        even *= len(rels[i])
    return odd, even


def _even_cycle_join(
    rels: list[Relation], order: list[str], name: str
) -> Relation:
    """Even cycles: cross-product the lighter alternating (perfect
    matching) class, then filter with the other class's edges."""
    k = len(rels)
    odd_product, even_product = _alternating_products(rels, k)
    if odd_product <= even_product:
        base = [rels[i] for i in range(0, k, 2)]
        filters = [rels[i] for i in range(1, k, 2)]
    else:
        base = [rels[i] for i in range(1, k, 2)]
        filters = [rels[i] for i in range(0, k, 2)]
    joined = base[0]
    for relation in base[1:]:
        joined = joined.cross(relation)
    for relation in filters:
        joined = joined.semijoin(relation)
    return joined.reorder(tuple(order)).with_name(name)


def _odd_cycle_join(
    rels: list[Relation], order: list[str], name: str
) -> Relation:
    """Odd cycles with k >= 5: the paper's X / X_S / W / Y construction,
    finished by a bundled LW triangle join.

    The excluded edge is ``e_k``; the paper's WLOG assumption
    ``prod(odd class) <= prod(even class)`` is realized, when violated, by
    reversing the path ``v_1 .. v_k`` (which swaps the two alternating
    classes while keeping ``e_k`` excluded).
    """
    k = len(rels)
    odd_product, even_product = _alternating_products(rels, k)
    if odd_product > even_product:
        # Reverse the path: w_i = v_{k-i+1}, so the closing edge f_k =
        # {w_k, w_1} = {v_1, v_k} stays excluded while the two alternating
        # classes swap (f_i = e_{k-i}).
        new_order = order[::-1]
        new_rels = [rels[k - 2 - i] for i in range(k - 1)] + [rels[k - 1]]
        rels = [
            new_rels[i].reorder((new_order[i], new_order[(i + 1) % k]))
            for i in range(k)
        ]
        order = new_order

    half = (k - 1) // 2  # the paper's k'
    # X = cross product of the odd-class edges (attribute-disjoint).
    x_rel = rels[0]
    for i in range(2, 2 * half, 2):
        x_rel = x_rel.cross(rels[i])
    # S = {v_2, ..., v_{k-2}};  W = X_S filtered by the interior even edges.
    s_attrs = tuple(order[1 : k - 2])  # v_2 .. v_{k-2}
    w_rel = x_rel.project(s_attrs)
    for i in range(1, 2 * half - 2, 2):
        w_rel = w_rel.semijoin(rels[i])
    # Y = W x R_{e_{k-1}}  (on S cup {v_{k-1}, v_k}).
    y_rel = w_rel.cross(rels[k - 2])
    # Bundle B = {v_2 ... v_{k-1}} and run the LW triangle join on
    # X'(v_1, B), Y'(B, v_k), R_{e_k}(v_k, v_1).
    bundle_attrs = tuple(order[1 : k - 1])  # v_2 .. v_{k-1}
    x_bundled = _bundle(x_rel, order[0], bundle_attrs, "X'")
    y_bundled = _bundle_right(y_rel, bundle_attrs, order[k - 1], "Y'")
    closing = rels[k - 1]  # on (v_{k-1}? no: on (v_k, v_1))
    closing = closing.reorder((order[k - 1], order[0])).with_name("T'")
    tri = triangle_join(x_bundled, y_bundled, closing, "tri")
    # Unbundle back to the full cycle schema.
    out_attrs = tuple(order)
    v1_pos = tri.position(order[0])
    bundle_pos = tri.position("__bundle__")
    vk_pos = tri.position(order[k - 1])
    rows = []
    for row in tri.tuples:
        bundle = row[bundle_pos]
        rows.append((row[v1_pos],) + tuple(bundle) + (row[vk_pos],))
    return Relation(name, out_attrs, rows)


def _bundle(
    relation: Relation,
    keep: str,
    bundle_attrs: tuple[str, ...],
    name: str,
) -> Relation:
    """Replace ``bundle_attrs`` by a single tuple-valued attribute."""
    keep_pos = relation.position(keep)
    bundle_pos = relation.positions(bundle_attrs)
    rows = [
        (row[keep_pos], tuple(row[i] for i in bundle_pos))
        for row in relation.tuples
    ]
    return Relation(name, (keep, "__bundle__"), rows)


def _bundle_right(
    relation: Relation,
    bundle_attrs: tuple[str, ...],
    keep: str,
    name: str,
) -> Relation:
    keep_pos = relation.position(keep)
    bundle_pos = relation.positions(bundle_attrs)
    rows = [
        (tuple(row[i] for i in bundle_pos), row[keep_pos])
        for row in relation.tuples
    ]
    return Relation(name, ("__bundle__", keep), rows)


def arity_two_join(
    query: JoinQuery,
    cover: FractionalCover | None = None,
    name: str = "J",
) -> Relation:
    """One-shot convenience wrapper for Theorem 7.3's algorithm."""
    return ArityTwoJoin(query, cover).execute(name)
