"""Leapfrog Triejoin: a worst-case optimal join over sorted-array tries.

**Extension beyond the paper.**  Leapfrog Triejoin (Veldhuizen, ICDT 2014;
contemporaneous with the paper) is the engine of LogicBlox and the third
classic WCOJ algorithm next to NPRR and Generic Join.  Like Generic Join it
proceeds attribute-at-a-time, but it represents each relation as a *sorted*
tuple array with iterator state per trie level, intersecting via leapfrog
seeks (galloping/exponential search) instead of hash probes.  Its run time
matches the AGM bound up to a log factor — the paper's footnote 3 makes the
same hashing-vs-sorting remark about its own model.

The sorted representation lives in
:class:`~repro.relations.sorted_index.SortedArrayIndex` (the engine's
``"sorted"`` backend) and is obtained through the
:class:`~repro.relations.database.Database` index cache when a catalog is
supplied — repeated queries over the same relations never re-sort.  The
packed ``"compact"`` backend (:mod:`repro.engine.compact`) is accepted as
an alternative layout: it exposes the same ``open/up/key/next/seek``
cursor protocol over contiguous ``array('q')`` level runs, turning many
seeks into radix arithmetic.  Each run creates fresh cursors that *share*
the cached arrays; :class:`LeapfrogTriejoin` coordinates one leapfrog
intersection per attribute level and streams result rows via
:meth:`LeapfrogTriejoin.iter_join`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence

from repro.core.filters import per_position_filters
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.database import Database
from repro.relations.relation import Relation, Row, Value
from repro.relations.sorted_index import SortedArrayIndex, SortedTrieIterator

__all__ = [
    "CURSOR_BACKENDS",
    "LeapfrogTriejoin",
    "SortedTrieIterator",
    "leapfrog_join",
]

#: Index kinds exposing the ``open/up/key/next/seek`` cursor protocol —
#: the layouts Leapfrog Triejoin can run over.
CURSOR_BACKENDS = ("sorted", "compact")


class LeapfrogTriejoin:
    """Executor coordinating one leapfrog intersection per attribute.

    Parameters
    ----------
    query:
        The natural join query.
    attribute_order:
        Global variable order (defaults to the query's attribute order).
    database:
        Optional catalog supplying cached sorted-array indexes (Remark
        5.2's ahead-of-time indexing).  When omitted, indexes are built
        privately — and re-sorted on every construction, so supply a
        database for repeated queries.
    backend:
        Index layout to run over: ``"sorted"`` (default; per-row tuple
        arrays) or ``"compact"`` (packed per-level ``array('q')`` runs
        with radix/galloping seeks).  Both expose the cursor protocol
        the leapfrog intersection needs; any other kind raises
        :class:`~repro.errors.QueryError`.
    filters:
        Optional mapping of attribute name to a single-value predicate
        (the query layer's residual selections).  A key surviving the
        leapfrog intersection is tested against its level's filter
        before recursing, pruning the subtree without seeking into it.
    telemetry:
        Optional :class:`~repro.feedback.telemetry.TelemetryProbe`
        matching this executor's order.  Instrumented runs count
        partials, candidates, and matches per level; a candidate here is
        a key the leapfrog intersection *emitted* (values the seeks
        skipped were never enumerated), so unfiltered levels observe
        ``candidates == matches`` and fan-out is the informative
        number.  ``None`` (default) keeps the uninstrumented path.
    """

    def __init__(
        self,
        query: JoinQuery,
        attribute_order: Sequence[str] | None = None,
        database: Database | None = None,
        filters: Mapping[str, Callable[[Value], bool]] | None = None,
        telemetry=None,
        backend: str = SortedArrayIndex.kind,
    ) -> None:
        self.query = query
        if backend not in CURSOR_BACKENDS:
            raise QueryError(
                f"leapfrog needs a cursor-capable backend; got {backend!r}"
                f" (supported: {CURSOR_BACKENDS})"
            )
        self.backend = backend
        order = (
            tuple(attribute_order)
            if attribute_order is not None
            else query.attributes
        )
        if set(order) != set(query.attributes) or len(order) != len(
            query.attributes
        ):
            raise QueryError(
                f"attribute order {order!r} is not a permutation of "
                f"{query.attributes!r}"
            )
        self.order = order
        rank = {a: i for i, a in enumerate(order)}
        if backend == SortedArrayIndex.kind:
            index_type = SortedArrayIndex
        else:
            # Lazy: repro.core must not import repro.engine at module
            # load (executors would re-enter this module mid-init), but
            # by construction time the engine package is initialized.
            from repro.engine.compact import CompactArrayIndex

            index_type = CompactArrayIndex
        self._indexes: list = []
        # Per depth: positions (into _indexes) of participating relations.
        self._participants: list[list[int]] = [[] for _ in order]
        for eid in query.edge_ids:
            relation = query.relation(eid)
            index_order = tuple(
                sorted(relation.attributes, key=rank.__getitem__)
            )
            # Cache only for the exact catalogued object (identity):
            # same-named ad-hoc relations (e.g. pushdown sections) build
            # privately instead of being served the full index.
            if database is not None and database.is_catalogued(relation):
                index = database.index(eid, index_order, backend)
            else:
                index = index_type(relation, index_order)
            position = len(self._indexes)
            self._indexes.append(index)
            for attribute in index_order:
                self._participants[rank[attribute]].append(position)
        self._output_perm = tuple(rank[a] for a in query.attributes)
        # Per-depth residual filter (None = unfiltered level).
        self._filters = per_position_filters(filters, order, query.attributes)
        if telemetry is not None and tuple(telemetry.order) != order:
            raise QueryError(
                f"telemetry probe order {telemetry.order!r} does not match "
                f"the executor's attribute order {order!r}"
            )
        self.telemetry = telemetry

    def iter_join(self) -> Iterator[Row]:
        """Stream the join's rows (query attribute order, no repeats).

        Every call opens fresh cursors over the shared sorted arrays, so
        an executor can be run repeatedly and generators can be abandoned
        mid-stream without corrupting state.
        """
        if any(len(index) == 0 for index in self._indexes):
            return
        cursors = [index.cursor() for index in self._indexes]
        levels = [
            [cursors[i] for i in ids] for ids in self._participants
        ]
        if self.telemetry is None:
            yield from self._level(0, levels, [])
        else:
            yield from self._level_observed(0, levels, [])

    def execute(self, name: str = "J") -> Relation:
        """Run the triejoin; returns the join in query attribute order."""
        return Relation(name, self.query.attributes, self.iter_join())

    def fold(self, folder):
        """Fold an aggregate through the level loops, skipping rows.

        The sorted and compact layouts implement the full node protocol
        (``items``/``child``/``count``/``fanout_hint``) alongside their
        cursor protocol, so the shared folding descent of
        :func:`repro.aggregate.fold.fold_executor` runs directly over
        this executor's indexes: seeks become range bisections, and
        prunable suffixes collapse to factorized counts instead of
        being leapfrogged through.  Returns the folder.
        """
        # Lazy for the same reason as the compact-backend import above.
        from repro.aggregate.fold import fold_executor

        return fold_executor(self, folder)

    def _level(
        self,
        depth: int,
        levels: list[list[SortedTrieIterator]],
        prefix: list[object],
    ) -> Iterator[Row]:
        if depth == len(self.order):
            perm = self._output_perm
            yield tuple(prefix[i] for i in perm)
            return
        iterators = levels[depth]
        if not iterators:
            raise QueryError(
                f"attribute {self.order[depth]!r} is in no relation"
            )
        for it in iterators:
            it.open()
        level_filter = self._filters[depth]
        try:
            if not any(it.at_end for it in iterators):
                for value in self._leapfrog(iterators):
                    if level_filter is not None and not level_filter(value):
                        continue
                    prefix.append(value)
                    yield from self._level(depth + 1, levels, prefix)
                    prefix.pop()
        finally:
            for it in iterators:
                it.up()

    def _level_observed(
        self,
        depth: int,
        levels: list[list[SortedTrieIterator]],
        prefix: list[object],
    ) -> Iterator[Row]:
        """:meth:`_level` with telemetry counters.

        A deliberate twin of :meth:`_level` (same reasoning as
        ``GenericJoin._search_observed``: the disabled path must stay
        branch-free).  Any change to :meth:`_level` must land here too;
        the telemetry tests assert row parity between the paths.
        """
        probe = self.telemetry
        if depth == len(self.order):
            perm = self._output_perm
            yield tuple(prefix[i] for i in perm)
            return
        probe.partials[depth] += 1
        iterators = levels[depth]
        if not iterators:
            raise QueryError(
                f"attribute {self.order[depth]!r} is in no relation"
            )
        for it in iterators:
            it.open()
        level_filter = self._filters[depth]
        try:
            if not any(it.at_end for it in iterators):
                for value in self._leapfrog(iterators):
                    probe.candidates[depth] += 1
                    if level_filter is not None and not level_filter(value):
                        continue
                    probe.matches[depth] += 1
                    prefix.append(value)
                    yield from self._level_observed(depth + 1, levels, prefix)
                    prefix.pop()
        finally:
            for it in iterators:
                it.up()

    @staticmethod
    def _leapfrog(iterators: list[SortedTrieIterator]):
        """Yield every key present in all iterators at the open level."""
        ordered = sorted(iterators, key=lambda it: it.key())
        k = len(ordered)
        p = 0
        current_max = ordered[k - 1].key()
        while True:
            it = ordered[p]
            key = it.key()
            if key == current_max:
                yield key
                it.next()
                if it.at_end:
                    return
                current_max = it.key()
            else:
                it.seek(current_max)
                if it.at_end:
                    return
                current_max = it.key()
            p = (p + 1) % k


def leapfrog_join(
    query: JoinQuery,
    attribute_order: Sequence[str] | None = None,
    name: str = "J",
    database: Database | None = None,
    backend: str = SortedArrayIndex.kind,
) -> Relation:
    """One-shot convenience wrapper for Leapfrog Triejoin."""
    return LeapfrogTriejoin(
        query, attribute_order, database, backend=backend
    ).execute(name)
