"""Leapfrog Triejoin: a worst-case optimal join over sorted-array tries.

**Extension beyond the paper.**  Leapfrog Triejoin (Veldhuizen, ICDT 2014;
contemporaneous with the paper) is the engine of LogicBlox and the third
classic WCOJ algorithm next to NPRR and Generic Join.  Like Generic Join it
proceeds attribute-at-a-time, but it represents each relation as a *sorted*
tuple array with iterator state per trie level, intersecting via leapfrog
seeks (galloping/exponential search) instead of hash probes.  Its run time
matches the AGM bound up to a log factor — the paper's footnote 3 makes the
same hashing-vs-sorting remark about its own model.

The implementation is self-contained (no TrieIndex reuse): per relation a
:class:`SortedTrieIterator` exposes the classic ``open / up / next / seek``
API over a lexicographically sorted tuple list; :class:`LeapfrogTriejoin`
coordinates one leapfrog intersection per attribute level.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.relations.relation import Relation, Row


class SortedTrieIterator:
    """Iterator over one relation viewed as a sorted trie.

    The relation's tuples are sorted lexicographically (after reordering
    columns to the global attribute order).  The iterator maintains, per
    open level, the half-open range ``[lo, hi)`` of rows sharing the
    current prefix, plus the current position inside it.

    The methods follow Veldhuizen's interface:

    * :meth:`open` — descend to the first key of the next level;
    * :meth:`up` — pop back to the parent level;
    * :meth:`key` — current key at the open level;
    * :meth:`next` — advance to the next *distinct* key at this level;
    * :meth:`seek` — gallop forward to the first key ``>= target``;
    * :attr:`at_end` — no more keys at this level.
    """

    __slots__ = ("rows", "attributes", "_stack", "_pos", "_end", "at_end")

    def __init__(self, relation: Relation, attribute_order: Sequence[str]) -> None:
        ordered = relation.reorder(tuple(attribute_order))
        self.rows: list[Row] = sorted(ordered.tuples)
        self.attributes = tuple(attribute_order)
        # Stack of (lo, hi, pos, end) saved per open ancestor level.
        self._stack: list[tuple[int, int, int, int]] = []
        self._pos = 0
        self._end = len(self.rows)
        self.at_end = not self.rows

    @property
    def depth(self) -> int:
        """Number of currently open levels (0 = at the root)."""
        return len(self._stack)

    def key(self):
        """The key at the current position of the open level."""
        return self.rows[self._pos][self.depth - 1]

    def open(self) -> None:
        """Descend into the first child range of the current position."""
        depth = self.depth
        lo = self._pos
        hi = self._run_end(lo, self._end, depth) if depth else self._end
        self._stack.append((lo, hi, self._pos, self._end))
        self._pos = lo
        self._end = hi
        self.at_end = self._pos >= self._end

    def up(self) -> None:
        """Return to the parent level (restoring its position)."""
        _lo, _hi, self._pos, self._end = self._stack.pop()
        self.at_end = False

    def next(self) -> None:
        """Advance past every row sharing the current key."""
        depth = self.depth
        self._pos = self._run_end(self._pos, self._end, depth)
        self.at_end = self._pos >= self._end

    def seek(self, target) -> None:
        """Gallop to the first row whose key is ``>= target``."""
        depth = self.depth
        column = depth - 1
        lo = self._pos
        if lo >= self._end or self.rows[lo][column] >= target:
            self.at_end = lo >= self._end
            return
        # Exponential probe, then binary search within the bracket.
        step = 1
        probe = lo
        while probe < self._end and self.rows[probe][column] < target:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, self._end)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rows[mid][column] < target:
                lo = mid + 1
            else:
                hi = mid
        self._pos = lo
        self.at_end = self._pos >= self._end

    def _run_end(self, pos: int, end: int, depth: int) -> int:
        """First row index past the run sharing ``rows[pos][:depth]``."""
        if pos >= end:
            return end
        column = depth - 1
        value = self.rows[pos][column]
        # Galloping run-length detection keeps next() cheap on long runs.
        step = 1
        lo = pos + 1
        probe = pos + 1
        while probe < end and self.rows[probe][column] == value:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, end)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rows[mid][column] == value:
                lo = mid + 1
            else:
                hi = mid
        return lo


class LeapfrogTriejoin:
    """Executor coordinating one leapfrog intersection per attribute.

    Parameters
    ----------
    query:
        The natural join query.
    attribute_order:
        Global variable order (defaults to the query's attribute order).
    """

    def __init__(
        self,
        query: JoinQuery,
        attribute_order: Sequence[str] | None = None,
    ) -> None:
        self.query = query
        order = (
            tuple(attribute_order)
            if attribute_order is not None
            else query.attributes
        )
        if set(order) != set(query.attributes) or len(order) != len(
            query.attributes
        ):
            raise QueryError(
                f"attribute order {order!r} is not a permutation of "
                f"{query.attributes!r}"
            )
        self.order = order
        rank = {a: i for i, a in enumerate(order)}
        self._iterators: list[SortedTrieIterator] = []
        self._participants: list[list[SortedTrieIterator]] = [
            [] for _ in order
        ]
        for eid in query.edge_ids:
            relation = query.relation(eid)
            trie_order = tuple(
                sorted(relation.attributes, key=rank.__getitem__)
            )
            iterator = SortedTrieIterator(relation, trie_order)
            self._iterators.append(iterator)
            for attribute in trie_order:
                self._participants[rank[attribute]].append(iterator)

    def execute(self, name: str = "J") -> Relation:
        """Run the triejoin; returns the join in query attribute order."""
        rows: list[Row] = []
        if any(not it.rows for it in self._iterators):
            return self.query.empty_output(name)
        prefix: list[object] = []
        self._level(0, prefix, rows)
        return Relation(name, self.order, rows).reorder(self.query.attributes)

    def _level(self, depth: int, prefix: list[object], out: list[Row]) -> None:
        if depth == len(self.order):
            out.append(tuple(prefix))
            return
        iterators = self._participants[depth]
        if not iterators:
            raise QueryError(
                f"attribute {self.order[depth]!r} is in no relation"
            )
        for it in iterators:
            it.open()
        try:
            if any(it.at_end for it in iterators):
                return
            for value in self._leapfrog(iterators):
                prefix.append(value)
                self._level(depth + 1, prefix, out)
                prefix.pop()
        finally:
            for it in iterators:
                it.up()

    @staticmethod
    def _leapfrog(iterators: list[SortedTrieIterator]):
        """Yield every key present in all iterators at the open level."""
        ordered = sorted(iterators, key=lambda it: it.key())
        k = len(ordered)
        p = 0
        current_max = ordered[k - 1].key()
        while True:
            it = ordered[p]
            key = it.key()
            if key == current_max:
                yield key
                it.next()
                if it.at_end:
                    return
                current_max = it.key()
            else:
                it.seek(current_max)
                if it.at_end:
                    return
                current_max = it.key()
            p = (p + 1) % k


def leapfrog_join(
    query: JoinQuery,
    attribute_order: Sequence[str] | None = None,
    name: str = "J",
) -> Relation:
    """One-shot convenience wrapper for Leapfrog Triejoin."""
    return LeapfrogTriejoin(query, attribute_order).execute(name)
