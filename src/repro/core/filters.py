"""Shared wiring for residual per-attribute filters.

The query layer (:mod:`repro.query`) pushes single-attribute selection
predicates down to the executors as a ``{attribute: predicate}``
mapping.  Every consumer needs the same two steps — validate that each
filtered attribute exists in the query, and slot the predicate at the
position its attribute occupies in some ordering (the global attribute
order for the level-hooking executors, the output schema for the
row-filter wrapper).  This helper is that one step, written once.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.errors import QueryError
from repro.relations.relation import Value

__all__ = ["per_position_filters"]


def per_position_filters(
    filters: Mapping[str, Callable[[Value], bool]] | None,
    order: Sequence[str],
    query_attributes: Sequence[str],
) -> list[Callable[[Value], bool] | None]:
    """One optional predicate per position of ``order`` (None = none).

    Raises :class:`~repro.errors.QueryError` when a filter names an
    attribute outside ``order`` — reported against
    ``query_attributes``, the caller's user-facing schema.
    """
    slots: list[Callable[[Value], bool] | None] = [None] * len(order)
    if filters:
        rank = {attribute: i for i, attribute in enumerate(order)}
        for attribute, predicate in filters.items():
            if attribute not in rank:
                raise QueryError(
                    f"filter attribute {attribute!r} is not in the "
                    f"query's attributes {tuple(query_attributes)!r}"
                )
            slots[rank[attribute]] = predicate
    return slots
