"""Small shared utilities (timing, table rendering)."""

from repro.utils.tables import format_table, print_table
from repro.utils.timing import Stopwatch, Timed, best_of, timed

__all__ = [
    "Stopwatch",
    "Timed",
    "best_of",
    "format_table",
    "print_table",
    "timed",
]
