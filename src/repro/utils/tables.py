"""ASCII table rendering for benchmark output.

The benchmark harness prints, for every experiment, the same rows/series
the paper's claims are about; this module keeps that output aligned and
diff-friendly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_cell(value) -> str:
    """Human-friendly cell formatting (floats get 4 significant digits)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> None:
    """Print :func:`format_table` (with surrounding blank lines)."""
    print()
    print(format_table(headers, rows, title))
    print()
