"""Timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any


@dataclass
class Timed:
    """A measured call: its result and the elapsed wall-clock seconds."""

    result: Any
    seconds: float


def timed(fn: Callable[[], Any]) -> Timed:
    """Run ``fn`` once under a monotonic clock."""
    start = time.perf_counter()
    result = fn()
    return Timed(result, time.perf_counter() - start)


def best_of(fn: Callable[[], Any], repeats: int = 3) -> Timed:
    """Run ``fn`` several times; keep the last result and the *minimum*
    time (the usual noise-robust summary for micro-benchmarks)."""
    best = None
    result = None
    for _ in range(max(1, repeats)):
        measurement = timed(fn)
        result = measurement.result
        if best is None or measurement.seconds < best:
            best = measurement.seconds
    assert best is not None
    return Timed(result, best)


class Stopwatch:
    """Context manager measuring a ``with`` block.

    >>> with Stopwatch() as sw:
    ...     sum(range(1000))
    >>> sw.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
