"""Immutable relations and the relational-algebra operations of the paper.

A :class:`Relation` is a named set of tuples over an ordered schema of
distinct attribute names (Section 2 of the paper).  The class implements
exactly the operators the paper's algorithms are built from:

* projection ``pi_S(R)``  — :meth:`Relation.project`
* the ``t_S``-section ``R[t_S] = pi_{A \\ S}(R semijoin {t_S})``
  — :meth:`Relation.section`
* semijoin ``R x S`` — :meth:`Relation.semijoin`
* natural join ``R join S`` (hash based) — :meth:`Relation.natural_join`
* cross product, rename, selection, attribute reordering.

Relations are value-immutable: every operation returns a new relation.
Tuples are plain Python tuples whose positions align with ``attributes``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import Any

from repro.errors import SchemaError

#: A value stored in a relation.  Any hashable object works; the paper's
#: instances use integers.
Value = Any

#: A tuple of a relation, aligned with the relation's attribute order.
Row = tuple[Value, ...]


class Relation:
    """A named, immutable set of tuples over an ordered attribute schema.

    Parameters
    ----------
    name:
        Human-readable name (``"R"``, ``"S"``...).  Names are cosmetic: they
        never affect algebraic operations.
    attributes:
        Ordered, distinct attribute names.
    tuples:
        Iterable of tuples, each of arity ``len(attributes)``.  Duplicates
        collapse (set semantics, as in the paper).
    """

    __slots__ = ("name", "attributes", "tuples", "_positions")

    def __init__(
        self,
        name: str,
        attributes: Iterable[str],
        tuples: Iterable[Row] = (),
    ) -> None:
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in schema {attrs!r}")
        arity = len(attrs)
        rows = frozenset(tuple(row) for row in tuples)
        for row in rows:
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row!r} has arity {len(row)}, schema {attrs!r} "
                    f"expects {arity}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "tuples", rows)
        object.__setattr__(
            self, "_positions", {a: i for i, a in enumerate(attrs)}
        )

    # -- basic protocol ----------------------------------------------------

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("Relation instances are immutable")

    def __reduce__(self):
        # Rebuild through __init__: the default slot-based pickling would
        # call __setattr__, which immutability forbids.  This also makes
        # relations shippable to worker processes for sharded execution.
        return (Relation, (self.name, self.attributes, self.tuples))

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.tuples)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        """Strict equality: same attribute order and same tuple set."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.attributes == other.attributes and self.tuples == other.tuples

    def __hash__(self) -> int:
        return hash((self.attributes, self.tuples))

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, attributes={self.attributes!r}, "
            f"|tuples|={len(self.tuples)})"
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_assignments(
        cls,
        name: str,
        attributes: Iterable[str],
        assignments: Iterable[Mapping[str, Value]],
    ) -> "Relation":
        """Build a relation from attribute->value mappings."""
        attrs = tuple(attributes)
        rows = [tuple(mapping[a] for a in attrs) for mapping in assignments]
        return cls(name, attrs, rows)

    def with_name(self, name: str) -> "Relation":
        """Return the same relation under a different name."""
        return Relation(name, self.attributes, self.tuples)

    # -- schema helpers ----------------------------------------------------

    @property
    def attribute_set(self) -> frozenset[str]:
        """The schema as an (unordered) set of attribute names."""
        return frozenset(self.attributes)

    def position(self, attribute: str) -> int:
        """Index of ``attribute`` within the schema order."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self.attributes!r}"
            ) from None

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Indices of several attributes, in the order given."""
        return tuple(self.position(a) for a in attributes)

    def assignment(self, row: Row) -> dict[str, Value]:
        """View a tuple as an attribute->value mapping."""
        return dict(zip(self.attributes, row))

    def iter_assignments(self) -> Iterator[dict[str, Value]]:
        """Iterate over tuples as attribute->value mappings."""
        for row in self.tuples:
            yield dict(zip(self.attributes, row))

    # -- relational algebra ------------------------------------------------

    def project(self, attributes: Iterable[str]) -> "Relation":
        """Projection ``pi_S(R)`` onto ``attributes`` (kept in given order)."""
        attrs = tuple(attributes)
        idx = self.positions(attrs)
        rows = {tuple(row[i] for i in idx) for row in self.tuples}
        return Relation(f"pi({self.name})", attrs, rows)

    def section(self, binding: Mapping[str, Value]) -> "Relation":
        """The ``t_S``-section ``R[t_S]`` (Section 2 of the paper).

        ``binding`` fixes values for a subset ``S`` of the schema; the result
        is a relation on the remaining attributes holding every completion:
        ``R[t_S] = { t_{A\\S} | (t_S, t_{A\\S}) in R }``.  With an empty
        binding this returns ``R`` itself (``R[t_emptyset] = R``).
        """
        for a in binding:
            self.position(a)  # raises SchemaError on unknown attributes
        keep = tuple(a for a in self.attributes if a not in binding)
        keep_idx = self.positions(keep)
        fixed = [(self.position(a), v) for a, v in binding.items()]
        rows = {
            tuple(row[i] for i in keep_idx)
            for row in self.tuples
            if all(row[i] == v for i, v in fixed)
        }
        return Relation(f"{self.name}[...]", keep, rows)

    def select(self, predicate: Callable[[dict[str, Value]], bool]) -> "Relation":
        """Keep tuples whose assignment satisfies ``predicate``."""
        rows = [
            row
            for row in self.tuples
            if predicate(dict(zip(self.attributes, row)))
        ]
        return Relation(f"sigma({self.name})", self.attributes, rows)

    def select_equals(self, attribute: str, value: Value) -> "Relation":
        """Keep tuples with ``attribute == value`` (schema unchanged)."""
        i = self.position(attribute)
        rows = [row for row in self.tuples if row[i] == value]
        return Relation(f"sigma({self.name})", self.attributes, rows)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes; names absent from ``mapping`` are unchanged."""
        for a in mapping:
            self.position(a)
        attrs = tuple(mapping.get(a, a) for a in self.attributes)
        return Relation(self.name, attrs, self.tuples)

    def reorder(self, attributes: Iterable[str]) -> "Relation":
        """Reorder the schema to ``attributes`` (must be a permutation)."""
        attrs = tuple(attributes)
        if set(attrs) != set(self.attributes) or len(attrs) != len(self.attributes):
            raise SchemaError(
                f"{attrs!r} is not a permutation of {self.attributes!r}"
            )
        idx = self.positions(attrs)
        rows = {tuple(row[i] for i in idx) for row in self.tuples}
        return Relation(self.name, attrs, rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """Semijoin ``R x S``: tuples of ``R`` matching some tuple of ``S``.

        ``R x S = { t in R : exists u in S with t and u equal on the shared
        attributes }`` — the paper's Section 2 definition.  With no shared
        attributes the result is ``R`` when ``S`` is non-empty, else empty.
        """
        shared = [a for a in self.attributes if a in other._positions]
        if not shared:
            rows = self.tuples if other.tuples else frozenset()
            return Relation(self.name, self.attributes, rows)
        my_idx = self.positions(shared)
        their_idx = other.positions(shared)
        keys = {tuple(row[i] for i in their_idx) for row in other.tuples}
        rows = [
            row
            for row in self.tuples
            if tuple(row[i] for i in my_idx) in keys
        ]
        return Relation(self.name, self.attributes, rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural (hash) join.  Output schema: self's attributes, then
        other's attributes that are not shared, in their original orders.

        Runs in ``O(|R| + |S| + |R join S|)`` expected time, the model
        assumed by the paper (footnote 3).
        """
        shared = [a for a in self.attributes if a in other._positions]
        out_attrs = self.attributes + tuple(
            a for a in other.attributes if a not in self._positions
        )
        extra_idx = other.positions(
            [a for a in other.attributes if a not in self._positions]
        )
        if not shared:
            rows = [
                left + tuple(right[i] for i in extra_idx)
                for left in self.tuples
                for right in other.tuples
            ]
            return Relation(f"({self.name}*{other.name})", out_attrs, rows)
        my_idx = self.positions(shared)
        their_idx = other.positions(shared)
        # Build the hash table on the smaller side.
        buckets: dict[Row, list[Row]] = {}
        for right in other.tuples:
            buckets.setdefault(
                tuple(right[i] for i in their_idx), []
            ).append(right)
        rows = []
        for left in self.tuples:
            key = tuple(left[i] for i in my_idx)
            for right in buckets.get(key, ()):
                rows.append(left + tuple(right[i] for i in extra_idx))
        return Relation(f"({self.name}*{other.name})", out_attrs, rows)

    def cross(self, other: "Relation") -> "Relation":
        """Cross product (the two schemas must be disjoint)."""
        overlap = self.attribute_set & other.attribute_set
        if overlap:
            raise SchemaError(
                f"cross product requires disjoint schemas; shared: {overlap}"
            )
        return self.natural_join(other)

    # -- comparisons used by tests ------------------------------------------

    def equivalent(self, other: "Relation") -> bool:
        """Equality up to attribute order (and ignoring names)."""
        if self.attribute_set != other.attribute_set:
            return False
        return self.tuples == other.reorder(self.attributes).tuples

    def is_empty(self) -> bool:
        """True when the relation holds no tuples."""
        return not self.tuples


def union_all(name: str, relations: Iterable[Relation]) -> Relation:
    """Union of relations over the same attribute set (first order wins)."""
    rels = list(relations)
    if not rels:
        raise SchemaError("union_all of zero relations is undefined")
    first = rels[0]
    rows: set[Row] = set(first.tuples)
    for rel in rels[1:]:
        if rel.attribute_set != first.attribute_set:
            raise SchemaError(
                f"union over different schemas: {rel.attributes!r} vs "
                f"{first.attributes!r}"
            )
        rows.update(rel.reorder(first.attributes).tuples)
    return Relation(name, first.attributes, rows)
