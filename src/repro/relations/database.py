"""A tiny in-memory database: a catalog of named relations plus index cache.

The paper's algorithms operate on a *database instance* ``I`` assigning a
concrete relation to every relational symbol (Section 2).  :class:`Database`
provides that binding along with:

* size statistics (the ``N_e`` inputs of the AGM bound),
* a uniform cache of index-backend objects keyed by (backend kind,
  relation, attribute order) — Remark 5.2's "index in advance" option: the
  first query that needs an order pays the build, later queries reuse it.
  Every backend of :mod:`repro.engine.backends` is cached here: the
  hash-dict :class:`~repro.relations.trie.TrieIndex`, the sorted
  flat-array :class:`~repro.relations.sorted_index.SortedArrayIndex` that
  Leapfrog Triejoin consumes, and the packed-run
  :class:`~repro.engine.compact.CompactArrayIndex`.  The cache is
  **bounded**: above a configurable entry budget (and, optionally, a
  byte budget), entries are evicted GreedyDual-Size-style —
  least-recently-used first, weighted by *build cost per resident byte*
  (each backend's ``nbytes()`` measure: exact ``buffer_info`` bytes for
  compact's packed arrays, container estimates for the others), so an
  expensive build survives a cheap one of equal recency and a **lean
  index survives a bloated one of equal build cost** — compact indexes
  are cheap to keep.  :meth:`Database.cache_info` exposes occupancy,
  hit/miss/eviction counters, and resident bytes per backend.
* a statistics cache serving the planner's
  :class:`~repro.stats.provider.StatsProvider`: relation profiles,
  samples, and sampled selectivities keyed by relation identity,
  invalidated together with the index cache when a relation is replaced
  or dropped.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field as dataclass_field

from repro.errors import DatabaseError
from repro.observe.tracing import maybe_span
from repro.relations.relation import Relation
from repro.relations.sorted_index import SortedArrayIndex
from repro.relations.trie import TrieIndex

#: Clock used to measure index build cost (monkeypatchable in tests).
_now = time.perf_counter

#: Registered index-backend constructors, keyed by their ``kind`` string.
#: :mod:`repro.engine.backends` re-exports this as the engine's backend
#: registry; every class satisfies the ``IndexBackend`` protocol.  The
#: engine-layer ``"compact"`` backend registers itself here when
#: :mod:`repro.engine.backends` is imported (which any ``import repro``
#: does) — this module cannot import it without a cycle.
INDEX_BACKENDS = {
    TrieIndex.kind: TrieIndex,
    SortedArrayIndex.kind: SortedArrayIndex,
}


def _index_nbytes(index: object) -> int:
    """Measured resident bytes of an index, 0 when unmeasurable.

    Every shipped backend implements ``nbytes()`` (exact for compact's
    packed arrays, estimates for trie/sorted); foreign backends without
    one are charged as size 1 by the cache, i.e. cost-only GreedyDual.
    """
    measure = getattr(index, "nbytes", None)
    if measure is None:
        return 0
    try:
        return int(measure())
    except Exception:
        return 0

#: Backend used when callers do not ask for one.
DEFAULT_BACKEND = TrieIndex.kind


def build_index(
    relation: Relation,
    attribute_order: Iterable[str],
    kind: str = DEFAULT_BACKEND,
):
    """Construct an uncached index of backend ``kind`` over ``relation``.

    Every index construction in the engine funnels through here (the
    catalog's cache-miss path and the executors' private builds alike),
    so this is where a traced run records its ``index-build`` spans —
    one ambient no-op when no tracer is active.
    """
    try:
        backend = INDEX_BACKENDS[kind]
    except KeyError:
        raise DatabaseError(
            f"unknown index backend {kind!r}; "
            f"choose one of {tuple(INDEX_BACKENDS)}"
        ) from None
    order = tuple(attribute_order)
    with maybe_span(
        "index-build", relation=relation.name, kind=kind, order=",".join(order)
    ):
        return backend(relation, order)


#: Default index-cache entry budget.  Deliberately generous — eviction
#: exists to bound long-lived servers that touch many (relation, order)
#: pairs, not to churn a working set.
DEFAULT_INDEX_CACHE_BUDGET = 256

#: GreedyDual-Size charge normalization: an entry's eviction weight is
#: ``build seconds per this many resident bytes``.  Only *relative*
#: weights matter to the eviction order; the reference merely keeps the
#: numbers in a human-readable range (charge ~= cost for a 64 KiB
#: index).  Unmeasurable indexes (nbytes 0) are charged as one
#: reference unit, i.e. plain cost-only GreedyDual.
_BYTE_REFERENCE = 65536.0

#: Default statistics-cache entry budget.  Statistics payloads include
#: O(N) projection sets, so this cache is bounded for the same
#: long-lived-server reason as the index cache; entries are cheap to
#: recompute, so eviction is simple FIFO.
DEFAULT_STATS_CACHE_BUDGET = 4096


@dataclass(frozen=True)
class WarmReport:
    """What :meth:`Database.warm` built, reused, and declined.

    ``warmed`` and ``skipped`` itemize ``(relation, index order, kind)``
    triples — ``skipped`` entries carry a fourth element naming the
    reason (already cached, not catalogued, budget exhausted).
    ``statistics_cached`` counts the statistics payloads the warmup's
    planning passes added to the stats cache.
    """

    warmed: tuple[tuple[str, tuple[str, ...], str], ...]
    skipped: tuple[tuple[str, tuple[str, ...], str, str], ...]
    #: Indexes actually built (== ``len(warmed)``; kept explicit so the
    #: report reads as a build counter in logs).
    index_builds: int
    #: Statistics-cache entries added while planning the workload.
    statistics_cached: int

    def describe(self) -> str:
        """A human-readable rendering of the warmup outcome."""
        lines = [
            f"warmed {self.index_builds} index(es), "
            f"{self.statistics_cached} statistics entr(ies):"
        ]
        for name, order, kind in self.warmed:
            lines.append(f"  + {name} [{', '.join(order)}] ({kind})")
        for name, order, kind, reason in self.skipped:
            lines.append(
                f"  - {name} [{', '.join(order)}] ({kind}): {reason}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of the index cache (:meth:`Database.cache_info`)."""

    #: Indexes currently resident.
    entries: int
    #: Maximum resident entries before eviction kicks in.
    budget: int
    #: Lookups served from the cache.
    hits: int
    #: Lookups that had to build an index.
    misses: int
    #: Entries evicted to stay within budget.
    evictions: int
    #: Summed build cost (seconds) of the resident entries.
    build_seconds: float
    #: Measured resident bytes of all cached indexes (each backend's
    #: ``nbytes()``: exact buffer bytes for compact, estimates for
    #: trie/sorted).
    bytes_total: int = 0
    #: Resident bytes broken down by backend kind, e.g.
    #: ``{"trie": 81920, "compact": 9616}``.  Kinds with no resident
    #: entry are absent.
    bytes_by_backend: dict = dataclass_field(default_factory=dict)
    #: Optional byte ceiling (``None`` = entries-only budgeting).
    byte_budget: int | None = None


class _CacheEntry:
    """One cached index plus the bookkeeping eviction needs."""

    __slots__ = ("index", "cost", "nbytes", "charge", "priority", "serial")

    def __init__(
        self,
        index: object,
        cost: float,
        nbytes: int,
        charge: float,
        priority: float,
        serial: int,
    ) -> None:
        self.index = index
        self.cost = cost  # build seconds (cache_info's build_seconds)
        self.nbytes = nbytes  # measured resident bytes (0 = unknown)
        self.charge = charge  # GreedyDual-Size weight: cost per byte
        self.priority = priority
        self.serial = serial  # monotone access counter: LRU tie-break


class Database:
    """A mutable catalog of immutable relations.

    ``index_cache_budget`` bounds the number of cached indexes; above
    it, entries are evicted by the GreedyDual-Size rule (priority =
    eviction-clock-at-last-use + build cost per resident byte), i.e.
    least-recently-used weighted so that, at equal recency, expensive
    builds survive cheap ones and lean indexes survive bloated ones.
    ``index_cache_byte_budget`` optionally adds a **measured-byte**
    ceiling on top of the entry count: when the resident indexes'
    summed ``nbytes()`` would exceed it, minimum-priority entries are
    evicted first (the entry-count proxy remains as a backstop for
    backends that cannot measure themselves).  A single index larger
    than the whole byte budget is still cached — evicting everything
    and thrashing on rebuilds would be strictly worse.
    """

    def __init__(
        self,
        relations: Iterable[Relation] = (),
        index_cache_budget: int = DEFAULT_INDEX_CACHE_BUDGET,
        stats_cache_budget: int = DEFAULT_STATS_CACHE_BUDGET,
        index_cache_byte_budget: int | None = None,
    ) -> None:
        if index_cache_budget < 1:
            raise DatabaseError(
                f"index_cache_budget must be >= 1, got {index_cache_budget}"
            )
        if index_cache_byte_budget is not None and index_cache_byte_budget < 1:
            raise DatabaseError(
                f"index_cache_byte_budget must be >= 1 or None, "
                f"got {index_cache_byte_budget}"
            )
        if stats_cache_budget < 1:
            raise DatabaseError(
                f"stats_cache_budget must be >= 1, got {stats_cache_budget}"
            )
        self._relations: dict[str, Relation] = {}
        # (backend kind, relation name, attribute order) -> _CacheEntry.
        self._index_cache: dict[
            tuple[str, str, tuple[str, ...]], _CacheEntry
        ] = {}
        self._index_cache_budget = index_cache_budget
        self._index_cache_byte_budget = index_cache_byte_budget
        self._cache_bytes = 0  # summed nbytes of resident entries
        self._cache_clock = 0.0  # GreedyDual inflation clock
        self._cache_serial = 0  # monotone access counter
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        # (relation name, payload key) -> statistics payload (profiles,
        # samples, selectivities) — see repro.stats.provider.  Bounded:
        # FIFO-evicted above stats_cache_budget entries.
        self._stats_cache: dict[tuple[str, tuple], object] = {}
        self._stats_cache_budget = stats_cache_budget
        # StatsConfig -> StatsProvider, so db.stats() is compute-once.
        self._stats_providers: dict[object, object] = {}
        for relation in relations:
            self.add(relation)

    # -- catalog -------------------------------------------------------------

    def add(self, relation: Relation, replace: bool = False) -> None:
        """Register ``relation`` under its name.

        Raises :class:`~repro.errors.DatabaseError` if the name is taken and
        ``replace`` is false.  Replacing a relation invalidates its cached
        indexes.
        """
        name = relation.name
        if name in self._relations and not replace:
            raise DatabaseError(f"relation {name!r} already exists")
        self._relations[name] = relation
        self._drop_cached(name)

    def remove(self, name: str) -> None:
        """Drop a relation (and its cached indexes) from the catalog."""
        if name not in self._relations:
            raise DatabaseError(f"relation {name!r} does not exist")
        del self._relations[name]
        self._drop_cached(name)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(f"relation {name!r} does not exist") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def names(self) -> list[str]:
        """Names of all catalogued relations (insertion order)."""
        return list(self._relations)

    # -- statistics ------------------------------------------------------------

    def sizes(self) -> dict[str, int]:
        """``{name: |R|}`` — the ``N_e`` vector of the AGM machinery."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def total_tuples(self) -> int:
        """``sum_e N_e`` — the input-reading term of Definition 2.1."""
        return sum(len(rel) for rel in self._relations.values())

    def is_catalogued(self, relation: Relation) -> bool:
        """True when ``relation`` is *the object* catalogued under its name.

        Identity (not equality) on purpose: the stats and index caches
        key by name, so they are only safe to consult for the exact
        object the catalog currently holds — a same-named ad-hoc
        relation with different tuples must miss.
        """
        return self._relations.get(relation.name) is relation

    def stats(self, config: object | None = None):
        """The :class:`~repro.stats.provider.StatsProvider` for this
        database (one cached instance per configuration).

        Statistics the provider computes for catalogued relations are
        stored in this database's stats cache and invalidated together
        with the index cache on ``add(replace=True)`` / ``remove``.
        """
        # Imported here: repro.stats.provider imports this module.
        from repro.stats.provider import StatsConfig, StatsProvider

        key = config if config is not None else StatsConfig()
        provider = self._stats_providers.get(key)
        if provider is None:
            provider = StatsProvider(database=self, config=key)
            self._stats_providers[key] = provider
        return provider

    # -- query layer ---------------------------------------------------------

    def prepare(self, query):
        """Freeze ``query`` into a :class:`~repro.query.prepared.
        PreparedQuery` bound to this catalog.

        ``query`` may be a fluent builder (``Q(...)``), a
        :class:`~repro.core.query.JoinQuery`, or a sequence of
        relations; whatever context it carries, its database is set to
        this catalog so the frozen plan's indexes are built through (and
        shared via) the bounded index cache.
        """
        return self._as_builder(query).prepare()

    def warm(self, queries, budget: int | None = None) -> WarmReport:
        """Pre-build the indexes and statistics a workload will need.

        ``queries`` is an iterable of fluent builders, join queries, or
        relation sequences.  Each is *planned* against this catalog —
        which alone warms the statistics cache (profiles, samples,
        selectivities) — and every ``(relation, order, kind)`` index the
        plan's executor would request is built through :meth:`index`,
        so later executions hit on every lookup (Remark 5.2's indexing
        in advance, across a whole workload).

        ``budget`` caps the number of index *builds*; independent of
        it, warming always respects the GreedyDual cache budget — once
        the cache is full, further builds are skipped rather than
        evicting earlier warmup work.  Requirements over relations not
        catalogued here (ad-hoc objects, or sections created by
        equality pushdown) are skipped: their indexes cannot outlive
        the query.  Returns a :class:`WarmReport`.
        """
        if budget is not None and (
            not isinstance(budget, int)
            or isinstance(budget, bool)
            or budget < 0
        ):
            raise DatabaseError(
                f"warm budget must be a non-negative int or None, "
                f"got {budget!r}"
            )
        warmed: list[tuple[str, tuple[str, ...], str]] = []
        skipped: list[tuple[str, tuple[str, ...], str, str]] = []
        stats_before = self.cached_stats_count()
        builds = 0
        # Only *catalogued* requirements dedup by (name, order, kind):
        # an ad-hoc relation sharing a catalogued name must not swallow
        # a later genuine requirement for the catalog's relation.
        seen: set[tuple[str, tuple[str, ...], str]] = set()
        seen_uncatalogued: set[tuple[str, tuple[str, ...], str]] = set()
        for item in queries:
            plan = self._as_builder(item).plan()
            for triple in plan.index_requirements():
                name, order, kind = triple
                if not self.is_catalogued(plan.query.relation(name)):
                    if triple not in seen_uncatalogued:
                        seen_uncatalogued.add(triple)
                        skipped.append(
                            (*triple, "not catalogued (ad-hoc or sectioned)")
                        )
                    continue
                if triple in seen:
                    continue
                seen.add(triple)
                if self.has_cached_index(name, order, kind):
                    skipped.append((*triple, "already cached"))
                    continue
                if budget is not None and builds >= budget:
                    skipped.append((*triple, "warm budget exhausted"))
                    continue
                if len(self._index_cache) >= self._index_cache_budget or (
                    self._index_cache_byte_budget is not None
                    and self._cache_bytes >= self._index_cache_byte_budget
                ):
                    skipped.append(
                        (
                            *triple,
                            "index cache at budget (would evict warmup)",
                        )
                    )
                    continue
                self.index(name, order, kind)
                builds += 1
                warmed.append(triple)
        return WarmReport(
            warmed=tuple(warmed),
            skipped=tuple(skipped),
            index_builds=builds,
            statistics_cached=self.cached_stats_count() - stats_before,
        )

    def _as_builder(self, query):
        """Normalize prepare()/warm() arguments to a builder on this db."""
        # Imported here: repro.query imports the engine, which imports
        # this module.
        from repro.query.builder import Q, QueryBuilder

        builder = query if isinstance(query, QueryBuilder) else Q(query)
        return builder.using(database=self)

    def stats_cache_get(self, name: str, key: tuple) -> object | None:
        """A cached statistics payload for relation ``name``, or None."""
        return self._stats_cache.get((name, key))

    def stats_cache_put(self, name: str, key: tuple, payload: object) -> None:
        """Cache a statistics payload for relation ``name``.

        The cache is bounded: above the budget the oldest entry is
        dropped (FIFO — statistics are cheap to recompute relative to
        index builds, so no cost weighting here).
        """
        while len(self._stats_cache) >= self._stats_cache_budget:
            self._stats_cache.pop(next(iter(self._stats_cache)))
        self._stats_cache[(name, key)] = payload

    def cached_stats_count(self) -> int:
        """Number of cached statistics payloads (observability hook)."""
        return len(self._stats_cache)

    # -- index cache ------------------------------------------------------------

    def index(
        self,
        name: str,
        attribute_order: Iterable[str],
        kind: str = DEFAULT_BACKEND,
    ):
        """An index of backend ``kind`` over relation ``name``.

        Built on first use, cached afterwards.  This realizes Remark 5.2:
        the data-preprocessing cost (``O(n^2 sum N_e)`` trie builds, or one
        ``O(N log N)`` sort for the flat backend) is paid once per
        (backend, relation, order) triple, not per query.
        """
        order = tuple(attribute_order)
        key = (kind, name, order)
        entry = self._index_cache.get(key)
        self._cache_serial += 1
        if entry is not None:
            self._cache_hits += 1
            # Refresh recency: GreedyDual-Size re-arms the entry's
            # priority at the current clock plus its per-byte charge.
            entry.priority = self._cache_clock + entry.charge
            entry.serial = self._cache_serial
            return entry.index
        self._cache_misses += 1
        started = _now()
        index = build_index(self[name], order, kind)
        cost = max(_now() - started, 0.0)
        nbytes = _index_nbytes(index)
        # GreedyDual-Size: charge = build cost / resident size, so the
        # cache prefers keeping what is expensive to rebuild *per byte
        # it occupies* — a compact index (small nbytes) earns a higher
        # charge than a trie of equal build cost and survives longer.
        charge = cost * _BYTE_REFERENCE / nbytes if nbytes > 0 else cost
        while self._index_cache and (
            len(self._index_cache) >= self._index_cache_budget
            or (
                self._index_cache_byte_budget is not None
                and self._cache_bytes + nbytes
                > self._index_cache_byte_budget
            )
        ):
            self._evict_one()
        self._index_cache[key] = _CacheEntry(
            index,
            cost,
            nbytes,
            charge,
            self._cache_clock + charge,
            self._cache_serial,
        )
        self._cache_bytes += nbytes
        return index

    def _evict_one(self) -> None:
        """Evict the minimum-priority entry (GreedyDual-Size).

        The clock advances to the victim's priority, so entries that sat
        unused accrue relative "age" while a recently touched, expensive,
        or lean entry stays ahead of the clock.  Equal priorities fall
        back to plain LRU via the access serial.
        """
        victim_key = min(
            self._index_cache,
            key=lambda k: (
                self._index_cache[k].priority,
                self._index_cache[k].serial,
            ),
        )
        victim = self._index_cache[victim_key]
        self._cache_clock = victim.priority
        self._cache_bytes -= victim.nbytes
        del self._index_cache[victim_key]
        self._cache_evictions += 1

    def has_cached_index(
        self, name: str, attribute_order: Iterable[str], kind: str
    ) -> bool:
        """True when an index is already resident (no build, no recency
        refresh) — the planner's cached-availability probe."""
        return (kind, name, tuple(attribute_order)) in self._index_cache

    def cache_info(self) -> CacheInfo:
        """A :class:`CacheInfo` snapshot of the index cache."""
        by_backend: dict[str, int] = {}
        for (kind, _name, _order), entry in self._index_cache.items():
            by_backend[kind] = by_backend.get(kind, 0) + entry.nbytes
        return CacheInfo(
            entries=len(self._index_cache),
            budget=self._index_cache_budget,
            hits=self._cache_hits,
            misses=self._cache_misses,
            evictions=self._cache_evictions,
            build_seconds=sum(
                entry.cost for entry in self._index_cache.values()
            ),
            bytes_total=self._cache_bytes,
            bytes_by_backend=by_backend,
            byte_budget=self._index_cache_byte_budget,
        )

    def trie(self, name: str, attribute_order: Iterable[str]) -> TrieIndex:
        """A hash-trie over relation ``name`` (the ``"trie"`` backend)."""
        return self.index(name, attribute_order, TrieIndex.kind)

    def sorted_index(
        self, name: str, attribute_order: Iterable[str]
    ) -> SortedArrayIndex:
        """A sorted flat-array index over relation ``name``."""
        return self.index(name, attribute_order, SortedArrayIndex.kind)

    def compact_index(self, name: str, attribute_order: Iterable[str]):
        """A packed flat-level index over relation ``name`` (the
        ``"compact"`` backend, :class:`~repro.engine.compact.
        CompactArrayIndex`)."""
        return self.index(name, attribute_order, "compact")

    def cached_trie_count(self) -> int:
        """Number of hash-tries currently cached (observability for tests)."""
        return self.cached_index_count(TrieIndex.kind)

    def cached_index_count(self, kind: str | None = None) -> int:
        """Number of cached indexes, optionally restricted to one backend."""
        if kind is None:
            return len(self._index_cache)
        return sum(1 for key in self._index_cache if key[0] == kind)

    def _drop_cached(self, name: str) -> None:
        """Invalidate every cached artifact touching relation ``name``.

        Indexes are keyed by the relation directly.  Statistics entries
        are dropped when ``name`` is the entry's subject *or appears
        anywhere in its payload key* — a sampled selectivity cached
        under its source relation also names its target, and replacing
        the target must invalidate it too.
        """
        stale = [key for key in self._index_cache if key[1] == name]
        for key in stale:
            self._cache_bytes -= self._index_cache[key].nbytes
            del self._index_cache[key]
        stale_stats = [
            entry_key
            for entry_key in self._stats_cache
            if entry_key[0] == name or name in entry_key[1]
        ]
        for entry_key in stale_stats:
            del self._stats_cache[entry_key]

    # -- conveniences -------------------------------------------------------------

    @classmethod
    def from_mapping(cls, relations: Mapping[str, Relation]) -> "Database":
        """Build a database renaming each relation to its mapping key."""
        db = cls()
        for name, relation in relations.items():
            db.add(relation.with_name(name))
        return db

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}({len(rel)})" for name, rel in self._relations.items()
        )
        return f"Database({inner})"
