"""A tiny in-memory database: a catalog of named relations plus index cache.

The paper's algorithms operate on a *database instance* ``I`` assigning a
concrete relation to every relational symbol (Section 2).  :class:`Database`
provides that binding along with:

* size statistics (the ``N_e`` inputs of the AGM bound),
* a cache of :class:`~repro.relations.trie.TrieIndex` objects keyed by
  (relation, attribute order) — Remark 5.2's "index in advance" option: the
  first query that needs an order pays the build, later queries reuse it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import DatabaseError
from repro.relations.relation import Relation
from repro.relations.trie import TrieIndex


class Database:
    """A mutable catalog of immutable relations."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        self._trie_cache: dict[tuple[str, tuple[str, ...]], TrieIndex] = {}
        for relation in relations:
            self.add(relation)

    # -- catalog -------------------------------------------------------------

    def add(self, relation: Relation, replace: bool = False) -> None:
        """Register ``relation`` under its name.

        Raises :class:`~repro.errors.DatabaseError` if the name is taken and
        ``replace`` is false.  Replacing a relation invalidates its cached
        indexes.
        """
        name = relation.name
        if name in self._relations and not replace:
            raise DatabaseError(f"relation {name!r} already exists")
        self._relations[name] = relation
        self._drop_cached(name)

    def remove(self, name: str) -> None:
        """Drop a relation (and its cached indexes) from the catalog."""
        if name not in self._relations:
            raise DatabaseError(f"relation {name!r} does not exist")
        del self._relations[name]
        self._drop_cached(name)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(f"relation {name!r} does not exist") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def names(self) -> list[str]:
        """Names of all catalogued relations (insertion order)."""
        return list(self._relations)

    # -- statistics ------------------------------------------------------------

    def sizes(self) -> dict[str, int]:
        """``{name: |R|}`` — the ``N_e`` vector of the AGM machinery."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def total_tuples(self) -> int:
        """``sum_e N_e`` — the input-reading term of Definition 2.1."""
        return sum(len(rel) for rel in self._relations.values())

    # -- index cache ------------------------------------------------------------

    def trie(self, name: str, attribute_order: Iterable[str]) -> TrieIndex:
        """A trie over relation ``name`` with levels in ``attribute_order``.

        Built on first use, cached afterwards.  This realizes Remark 5.2: the
        ``O(n^2 sum N_e)`` data-preprocessing cost is paid once per
        (relation, order) pair, not per query.
        """
        order = tuple(attribute_order)
        key = (name, order)
        index = self._trie_cache.get(key)
        if index is None:
            index = TrieIndex(self[name], order)
            self._trie_cache[key] = index
        return index

    def cached_trie_count(self) -> int:
        """Number of tries currently cached (observability for tests)."""
        return len(self._trie_cache)

    def _drop_cached(self, name: str) -> None:
        stale = [key for key in self._trie_cache if key[0] == name]
        for key in stale:
            del self._trie_cache[key]

    # -- conveniences -------------------------------------------------------------

    @classmethod
    def from_mapping(cls, relations: Mapping[str, Relation]) -> "Database":
        """Build a database renaming each relation to its mapping key."""
        db = cls()
        for name, relation in relations.items():
            db.add(relation.with_name(name))
        return db

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}({len(rel)})" for name, rel in self._relations.items()
        )
        return f"Database({inner})"
