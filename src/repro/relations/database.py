"""A tiny in-memory database: a catalog of named relations plus index cache.

The paper's algorithms operate on a *database instance* ``I`` assigning a
concrete relation to every relational symbol (Section 2).  :class:`Database`
provides that binding along with:

* size statistics (the ``N_e`` inputs of the AGM bound),
* a uniform cache of index-backend objects keyed by (backend kind,
  relation, attribute order) — Remark 5.2's "index in advance" option: the
  first query that needs an order pays the build, later queries reuse it.
  Both backends of :mod:`repro.engine.backends` are cached here: the
  hash-dict :class:`~repro.relations.trie.TrieIndex` and the sorted
  flat-array :class:`~repro.relations.sorted_index.SortedArrayIndex` that
  Leapfrog Triejoin consumes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import DatabaseError
from repro.relations.relation import Relation
from repro.relations.sorted_index import SortedArrayIndex
from repro.relations.trie import TrieIndex

#: Registered index-backend constructors, keyed by their ``kind`` string.
#: :mod:`repro.engine.backends` re-exports this as the engine's backend
#: registry; both classes satisfy the ``IndexBackend`` protocol.
INDEX_BACKENDS = {
    TrieIndex.kind: TrieIndex,
    SortedArrayIndex.kind: SortedArrayIndex,
}

#: Backend used when callers do not ask for one.
DEFAULT_BACKEND = TrieIndex.kind


def build_index(
    relation: Relation,
    attribute_order: Iterable[str],
    kind: str = DEFAULT_BACKEND,
):
    """Construct an uncached index of backend ``kind`` over ``relation``."""
    try:
        backend = INDEX_BACKENDS[kind]
    except KeyError:
        raise DatabaseError(
            f"unknown index backend {kind!r}; "
            f"choose one of {tuple(INDEX_BACKENDS)}"
        ) from None
    return backend(relation, tuple(attribute_order))


class Database:
    """A mutable catalog of immutable relations."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        # (backend kind, relation name, attribute order) -> index object.
        self._index_cache: dict[tuple[str, str, tuple[str, ...]], object] = {}
        for relation in relations:
            self.add(relation)

    # -- catalog -------------------------------------------------------------

    def add(self, relation: Relation, replace: bool = False) -> None:
        """Register ``relation`` under its name.

        Raises :class:`~repro.errors.DatabaseError` if the name is taken and
        ``replace`` is false.  Replacing a relation invalidates its cached
        indexes.
        """
        name = relation.name
        if name in self._relations and not replace:
            raise DatabaseError(f"relation {name!r} already exists")
        self._relations[name] = relation
        self._drop_cached(name)

    def remove(self, name: str) -> None:
        """Drop a relation (and its cached indexes) from the catalog."""
        if name not in self._relations:
            raise DatabaseError(f"relation {name!r} does not exist")
        del self._relations[name]
        self._drop_cached(name)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(f"relation {name!r} does not exist") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def names(self) -> list[str]:
        """Names of all catalogued relations (insertion order)."""
        return list(self._relations)

    # -- statistics ------------------------------------------------------------

    def sizes(self) -> dict[str, int]:
        """``{name: |R|}`` — the ``N_e`` vector of the AGM machinery."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def total_tuples(self) -> int:
        """``sum_e N_e`` — the input-reading term of Definition 2.1."""
        return sum(len(rel) for rel in self._relations.values())

    # -- index cache ------------------------------------------------------------

    def index(
        self,
        name: str,
        attribute_order: Iterable[str],
        kind: str = DEFAULT_BACKEND,
    ):
        """An index of backend ``kind`` over relation ``name``.

        Built on first use, cached afterwards.  This realizes Remark 5.2:
        the data-preprocessing cost (``O(n^2 sum N_e)`` trie builds, or one
        ``O(N log N)`` sort for the flat backend) is paid once per
        (backend, relation, order) triple, not per query.
        """
        order = tuple(attribute_order)
        key = (kind, name, order)
        index = self._index_cache.get(key)
        if index is None:
            index = build_index(self[name], order, kind)
            self._index_cache[key] = index
        return index

    def trie(self, name: str, attribute_order: Iterable[str]) -> TrieIndex:
        """A hash-trie over relation ``name`` (the ``"trie"`` backend)."""
        return self.index(name, attribute_order, TrieIndex.kind)

    def sorted_index(
        self, name: str, attribute_order: Iterable[str]
    ) -> SortedArrayIndex:
        """A sorted flat-array index over relation ``name``."""
        return self.index(name, attribute_order, SortedArrayIndex.kind)

    def cached_trie_count(self) -> int:
        """Number of hash-tries currently cached (observability for tests)."""
        return self.cached_index_count(TrieIndex.kind)

    def cached_index_count(self, kind: str | None = None) -> int:
        """Number of cached indexes, optionally restricted to one backend."""
        if kind is None:
            return len(self._index_cache)
        return sum(1 for key in self._index_cache if key[0] == kind)

    def _drop_cached(self, name: str) -> None:
        stale = [key for key in self._index_cache if key[1] == name]
        for key in stale:
            del self._index_cache[key]

    # -- conveniences -------------------------------------------------------------

    @classmethod
    def from_mapping(cls, relations: Mapping[str, Relation]) -> "Database":
        """Build a database renaming each relation to its mapping key."""
        db = cls()
        for name, relation in relations.items():
            db.add(relation.with_name(name))
        return db

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}({len(rel)})" for name, rel in self._relations.items()
        )
        return f"Database({inner})"
