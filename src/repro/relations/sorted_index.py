"""Sorted flat-array trie indexes: the ``"sorted"`` engine backend.

The paper's search-tree requirements (Section 5.3.2, properties
(ST1)-(ST3)) are satisfied by any structure that can walk attribute
prefixes, count projected sections, and enumerate them output-linearly.
:mod:`repro.relations.trie` realizes them with hash dictionaries (the
paper's Section 5.1 hashing remark); this module realizes them with a
*single lexicographically sorted tuple array* — the representation of
Leapfrog Triejoin (Veldhuizen, ICDT 2014) and of "Worst-Case Optimal
Radix Triejoin" (Fekete et al.), where a flat sorted/flat index is shown
to beat pointer-chasing tries on cache behaviour.

Two classes:

* :class:`SortedArrayIndex` — the cacheable index object.  It pays the
  ``O(N log N)`` sort once per (relation, attribute order) pair and then
  answers the same protocol as :class:`~repro.relations.trie.TrieIndex`
  (``walk`` / ``descend`` / ``count`` / ``paths`` / ``child`` / ``items``
  / ``fanout``), with a "node" being a half-open row range ``(lo, hi,
  depth)`` instead of a pointer.  Per footnote 3 of the paper, lookups
  cost an extra ``O(log N)`` factor over hashing.
* :class:`SortedTrieIterator` — Veldhuizen's stateful ``open / up / next
  / seek`` cursor over the same sorted array, used by the leapfrog
  intersection.  :meth:`SortedArrayIndex.cursor` hands out fresh cursors
  that *share* the sorted array, so repeated queries never re-sort.
"""

from __future__ import annotations

import sys

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relations.relation import Relation, Row, Value

#: A position in a :class:`SortedArrayIndex`: the half-open row range
#: ``[lo, hi)`` of tuples sharing the first ``depth`` values.
RangeNode = tuple[int, int, int]


class SortedTrieIterator:
    """Iterator over one relation viewed as a sorted trie.

    The relation's tuples are sorted lexicographically (after reordering
    columns to the global attribute order).  The iterator maintains, per
    open level, the half-open range ``[lo, hi)`` of rows sharing the
    current prefix, plus the current position inside it.

    The methods follow Veldhuizen's interface:

    * :meth:`open` — descend to the first key of the next level;
    * :meth:`up` — pop back to the parent level;
    * :meth:`key` — current key at the open level;
    * :meth:`next` — advance to the next *distinct* key at this level;
    * :meth:`seek` — gallop forward to the first key ``>= target``;
    * :attr:`at_end` — no more keys at this level.
    """

    __slots__ = ("rows", "attributes", "_stack", "_pos", "_end", "at_end")

    def __init__(self, relation: Relation, attribute_order: Sequence[str]) -> None:
        ordered = relation.reorder(tuple(attribute_order))
        self._bind(sorted(ordered.tuples), tuple(attribute_order))

    @classmethod
    def from_sorted_rows(
        cls, rows: list[Row], attributes: tuple[str, ...]
    ) -> "SortedTrieIterator":
        """A cursor over an *already sorted* shared row array (no copy)."""
        iterator = cls.__new__(cls)
        iterator._bind(rows, attributes)
        return iterator

    def _bind(self, rows: list[Row], attributes: tuple[str, ...]) -> None:
        self.rows = rows
        self.attributes = attributes
        # Stack of (lo, hi, pos, end) saved per open ancestor level.
        self._stack: list[tuple[int, int, int, int]] = []
        self._pos = 0
        self._end = len(rows)
        self.at_end = not rows

    @property
    def depth(self) -> int:
        """Number of currently open levels (0 = at the root)."""
        return len(self._stack)

    def key(self):
        """The key at the current position of the open level."""
        return self.rows[self._pos][self.depth - 1]

    def open(self) -> None:
        """Descend into the first child range of the current position."""
        depth = self.depth
        lo = self._pos
        hi = self._run_end(lo, self._end, depth) if depth else self._end
        self._stack.append((lo, hi, self._pos, self._end))
        self._pos = lo
        self._end = hi
        self.at_end = self._pos >= self._end

    def up(self) -> None:
        """Return to the parent level (restoring its position)."""
        _lo, _hi, self._pos, self._end = self._stack.pop()
        self.at_end = False

    def next(self) -> None:
        """Advance past every row sharing the current key."""
        depth = self.depth
        self._pos = self._run_end(self._pos, self._end, depth)
        self.at_end = self._pos >= self._end

    def seek(self, target) -> None:
        """Gallop to the first row whose key is ``>= target``."""
        depth = self.depth
        column = depth - 1
        lo = self._pos
        if lo >= self._end or self.rows[lo][column] >= target:
            self.at_end = lo >= self._end
            return
        # Exponential probe, then binary search within the bracket.
        step = 1
        probe = lo
        while probe < self._end and self.rows[probe][column] < target:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, self._end)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rows[mid][column] < target:
                lo = mid + 1
            else:
                hi = mid
        self._pos = lo
        self.at_end = self._pos >= self._end

    def _run_end(self, pos: int, end: int, depth: int) -> int:
        """First row index past the run sharing ``rows[pos][:depth]``."""
        if pos >= end:
            return end
        column = depth - 1
        value = self.rows[pos][column]
        # Galloping run-length detection keeps next() cheap on long runs.
        step = 1
        lo = pos + 1
        probe = pos + 1
        while probe < end and self.rows[probe][column] == value:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, end)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rows[mid][column] == value:
                lo = mid + 1
            else:
                hi = mid
        return lo


class SortedArrayIndex:
    """A search tree over a relation stored as one sorted tuple array.

    Implements the same (ST1)-(ST3) protocol as
    :class:`~repro.relations.trie.TrieIndex` so the two are pluggable
    behind :class:`repro.engine.backends.IndexBackend`; a node is the
    half-open range ``(lo, hi, depth)`` of rows sharing a length-``depth``
    prefix.  Compared with the hash trie: build is ``O(N log N)`` (one
    sort), point lookups cost ``O(log N)`` (binary search) instead of
    ``O(1)``, but the flat array is cheap to cache and is what the
    leapfrog cursors consume directly.
    """

    __slots__ = ("attributes", "rows", "_source_name")

    #: Backend registry key (see :mod:`repro.engine.backends`).
    kind = "sorted"

    def __init__(self, relation: Relation, attribute_order: Iterable[str]) -> None:
        attrs = tuple(attribute_order)
        if set(attrs) != relation.attribute_set or len(attrs) != len(
            relation.attributes
        ):
            raise SchemaError(
                f"attribute order {attrs!r} is not a permutation of "
                f"{relation.attributes!r}"
            )
        self.attributes = attrs
        self._source_name = relation.name
        idx = relation.positions(attrs)
        self.rows: list[Row] = sorted(
            tuple(row[i] for i in idx) for row in relation.tuples
        )

    # -- basic protocol ----------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of levels (= attributes) of the index."""
        return len(self.attributes)

    @property
    def root(self) -> RangeNode:
        """The whole-array range: every row shares the empty prefix."""
        return (0, len(self.rows), 0)

    def __len__(self) -> int:
        """Number of indexed tuples (rows are distinct by construction)."""
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"SortedArrayIndex({self._source_name!r}, "
            f"order={self.attributes!r}, |tuples|={len(self)})"
        )

    def cursor(self) -> SortedTrieIterator:
        """A fresh leapfrog cursor sharing this index's sorted array."""
        return SortedTrieIterator.from_sorted_rows(self.rows, self.attributes)

    # -- (ST1): prefix membership -------------------------------------------

    def child(self, node: RangeNode | None, value: Value) -> RangeNode | None:
        """The sub-range of ``node`` whose next column equals ``value``."""
        if node is None:
            return None
        lo, hi, depth = node
        start = self._lower_bound(lo, hi, depth, value)
        if start >= hi or self.rows[start][depth] != value:
            return None
        return (start, self._run_end(start, hi, depth), depth + 1)

    def walk(self, prefix: Iterable[Value]) -> RangeNode | None:
        """Follow ``prefix`` values from the root; ``None`` if absent."""
        return self.descend(self.root, prefix)

    def contains_prefix(self, prefix: Iterable[Value]) -> bool:
        """(ST1) membership of a prefix tuple in the projected relation."""
        return self.walk(prefix) is not None

    def descend(
        self, node: RangeNode | None, values: Iterable[Value]
    ) -> RangeNode | None:
        """Continue a walk from an interior ``node`` (ST1, resumed)."""
        current = node
        for value in values:
            current = self.child(current, value)
            if current is None:
                return None
        return current

    # -- (ST2): projected-section cardinality ---------------------------------

    def count(self, node: RangeNode | None, depth: int) -> int:
        """(ST2) number of distinct length-``depth`` paths below ``node``.

        Unlike the hash trie's precomputed ``counts`` vector this runs one
        gallop per distinct path — ``O(result * log N)`` rather than
        ``O(1)``; the planner prefers the hash backend for count-driven
        algorithms (NPRR's per-tuple case analysis).
        """
        if node is None or depth < 0:
            return 0
        lo, hi, at = node
        if depth == 0:
            return 1
        target = at + depth
        if target > self.arity:
            return 0
        total = 0
        pos = lo
        while pos < hi:
            total += 1
            pos = self._prefix_run_end(pos, hi, target)
        return total

    def prefix_count(self, prefix: Iterable[Value], depth: int) -> int:
        """(ST1)+(ST2) in one call: walk ``prefix`` then count at ``depth``."""
        return self.count(self.walk(prefix), depth)

    # -- (ST3): enumeration ---------------------------------------------------

    def items(self, node: RangeNode | None) -> Iterator[tuple[Value, RangeNode]]:
        """``(value, child range)`` pairs below ``node``, in sorted order."""
        if node is None:
            return
        lo, hi, depth = node
        if depth >= self.arity:
            return
        pos = lo
        rows = self.rows
        while pos < hi:
            end = self._run_end(pos, hi, depth)
            yield rows[pos][depth], (pos, end, depth + 1)
            pos = end

    def fanout(self, node: RangeNode | None) -> int:
        """Number of distinct next-column values below ``node``."""
        return self.count(node, 1)

    def fanout_hint(self, node: RangeNode | None) -> int:
        """O(1) upper bound on :meth:`fanout`, no children materialized.

        Counting distinct keys exactly costs one gallop per key; for
        smallest-first ranking two array endpoint reads suffice: the
        row-range width bounds the distinct count from above, and for
        integer columns so does the value span ``last - first + 1``
        (distinct sorted integers in ``[first, last]`` cannot outnumber
        the interval).  The tighter of the two is still an upper bound,
        but no longer over-counts long duplicate runs over narrow
        domains — the case the planner's order descent hits in a loop.
        """
        if node is None:
            return 0
        lo, hi, depth = node
        width = hi - lo
        if width > 1 and depth < self.arity:
            first = self.rows[lo][depth]
            last = self.rows[hi - 1][depth]
            if isinstance(first, int) and isinstance(last, int):
                span = last - first + 1
                if span < width:
                    return span
        return width

    def paths(self, node: RangeNode | None, depth: int) -> Iterator[Row]:
        """(ST3) yield every distinct length-``depth`` tuple below ``node``.

        Paths come out in sorted order; each costs ``O(depth + log N)``.
        """
        if node is None or depth < 0:
            return
        if depth == 0:
            yield ()
            return
        lo, hi, at = node
        target = at + depth
        if target > self.arity:
            return
        rows = self.rows
        pos = lo
        while pos < hi:
            yield rows[pos][at:target]
            pos = self._prefix_run_end(pos, hi, target)

    def tuples(self) -> Iterator[Row]:
        """All indexed tuples, in index attribute order (sorted)."""
        return iter(self.rows)

    def nbytes(self) -> int:
        """Estimated resident bytes of the sorted row array.

        The list container plus one tuple object per row (rows share an
        arity, so the first row's size stands for all).  Value objects
        are excluded — they are shared with the source relation — which
        keeps the figure comparable with the other backends' measures.
        """
        total = sys.getsizeof(self.rows)
        if self.rows:
            total += len(self.rows) * sys.getsizeof(self.rows[0])
        return total

    def to_relation(self, name: str | None = None) -> Relation:
        """Materialize the index back into a :class:`Relation`."""
        return Relation(
            name if name is not None else self._source_name,
            self.attributes,
            self.rows,
        )

    # -- range arithmetic ------------------------------------------------------

    def _lower_bound(self, lo: int, hi: int, column: int, value: Value) -> int:
        """First row index in ``[lo, hi)`` with ``row[column] >= value``."""
        rows = self.rows
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][column] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _run_end(self, pos: int, end: int, column: int) -> int:
        """First row index past the run sharing ``rows[pos][column]``."""
        rows = self.rows
        value = rows[pos][column]
        step = 1
        lo = pos + 1
        probe = pos + 1
        while probe < end and rows[probe][column] == value:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, end)
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][column] == value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _prefix_run_end(self, pos: int, end: int, plen: int) -> int:
        """First row index past the run sharing ``rows[pos][:plen]``."""
        rows = self.rows
        prefix = rows[pos][:plen]
        step = 1
        lo = pos + 1
        probe = pos + 1
        while probe < end and rows[probe][:plen] == prefix:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, end)
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][:plen] == prefix:
                lo = mid + 1
            else:
                hi = mid
        return lo
