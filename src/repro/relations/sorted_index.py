"""Sorted flat-array trie indexes: the ``"sorted"`` engine backend.

The paper's search-tree requirements (Section 5.3.2, properties
(ST1)-(ST3)) are satisfied by any structure that can walk attribute
prefixes, count projected sections, and enumerate them output-linearly.
:mod:`repro.relations.trie` realizes them with hash dictionaries (the
paper's Section 5.1 hashing remark); this module realizes them with a
*single lexicographically sorted tuple array* — the representation of
Leapfrog Triejoin (Veldhuizen, ICDT 2014) and of "Worst-Case Optimal
Radix Triejoin" (Fekete et al.), where a flat sorted/flat index is shown
to beat pointer-chasing tries on cache behaviour.

Two classes:

* :class:`SortedArrayIndex` — the cacheable index object.  It pays the
  ``O(N log N)`` sort once per (relation, attribute order) pair and then
  answers the same protocol as :class:`~repro.relations.trie.TrieIndex`
  (``walk`` / ``descend`` / ``count`` / ``paths`` / ``child`` / ``items``
  / ``fanout``), with a "node" being a half-open row range ``(lo, hi,
  depth)`` instead of a pointer.  Per footnote 3 of the paper, lookups
  cost an extra ``O(log N)`` factor over hashing.
* :class:`SortedTrieIterator` — Veldhuizen's stateful ``open / up / next
  / seek`` cursor over the same sorted array, used by the leapfrog
  intersection.  :meth:`SortedArrayIndex.cursor` hands out fresh cursors
  that *share* the sorted array, so repeated queries never re-sort.
"""

from __future__ import annotations

import sys

from array import array
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relations.relation import Relation, Row, Value

#: A position in a :class:`SortedArrayIndex`: the half-open row range
#: ``[lo, hi)`` of tuples sharing the first ``depth`` values.
RangeNode = tuple[int, int, int]


class SortedTrieIterator:
    """Iterator over one relation viewed as a sorted trie.

    The relation's tuples are sorted lexicographically (after reordering
    columns to the global attribute order).  The iterator maintains, per
    open level, the half-open range ``[lo, hi)`` of rows sharing the
    current prefix, plus the current position inside it.

    The methods follow Veldhuizen's interface:

    * :meth:`open` — descend to the first key of the next level;
    * :meth:`up` — pop back to the parent level;
    * :meth:`key` — current key at the open level;
    * :meth:`next` — advance to the next *distinct* key at this level;
    * :meth:`seek` — gallop forward to the first key ``>= target``;
    * :attr:`at_end` — no more keys at this level.
    """

    __slots__ = ("rows", "attributes", "_stack", "_pos", "_end", "at_end")

    def __init__(self, relation: Relation, attribute_order: Sequence[str]) -> None:
        ordered = relation.reorder(tuple(attribute_order))
        self._bind(sorted(ordered.tuples), tuple(attribute_order))

    @classmethod
    def from_sorted_rows(
        cls, rows: list[Row], attributes: tuple[str, ...]
    ) -> "SortedTrieIterator":
        """A cursor over an *already sorted* shared row array (no copy)."""
        iterator = cls.__new__(cls)
        iterator._bind(rows, attributes)
        return iterator

    def _bind(self, rows: list[Row], attributes: tuple[str, ...]) -> None:
        self.rows = rows
        self.attributes = attributes
        # Stack of (lo, hi, pos, end) saved per open ancestor level.
        self._stack: list[tuple[int, int, int, int]] = []
        self._pos = 0
        self._end = len(rows)
        self.at_end = not rows

    @property
    def depth(self) -> int:
        """Number of currently open levels (0 = at the root)."""
        return len(self._stack)

    def key(self):
        """The key at the current position of the open level."""
        return self.rows[self._pos][self.depth - 1]

    def open(self) -> None:
        """Descend into the first child range of the current position."""
        depth = self.depth
        lo = self._pos
        hi = self._run_end(lo, self._end, depth) if depth else self._end
        self._stack.append((lo, hi, self._pos, self._end))
        self._pos = lo
        self._end = hi
        self.at_end = self._pos >= self._end

    def up(self) -> None:
        """Return to the parent level (restoring its position)."""
        _lo, _hi, self._pos, self._end = self._stack.pop()
        self.at_end = False

    def next(self) -> None:
        """Advance past every row sharing the current key."""
        depth = self.depth
        self._pos = self._run_end(self._pos, self._end, depth)
        self.at_end = self._pos >= self._end

    def seek(self, target) -> None:
        """Gallop to the first row whose key is ``>= target``."""
        depth = self.depth
        column = depth - 1
        lo = self._pos
        if lo >= self._end or self.rows[lo][column] >= target:
            self.at_end = lo >= self._end
            return
        # Exponential probe, then binary search within the bracket.
        step = 1
        probe = lo
        while probe < self._end and self.rows[probe][column] < target:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, self._end)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rows[mid][column] < target:
                lo = mid + 1
            else:
                hi = mid
        self._pos = lo
        self.at_end = self._pos >= self._end

    def _run_end(self, pos: int, end: int, depth: int) -> int:
        """First row index past the run sharing ``rows[pos][:depth]``."""
        if pos >= end:
            return end
        column = depth - 1
        value = self.rows[pos][column]
        # Galloping run-length detection keeps next() cheap on long runs.
        step = 1
        lo = pos + 1
        probe = pos + 1
        while probe < end and self.rows[probe][column] == value:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, end)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.rows[mid][column] == value:
                lo = mid + 1
            else:
                hi = mid
        return lo


class SortedArrayIndex:
    """A search tree over a relation stored as one sorted tuple array.

    Implements the same (ST1)-(ST3) protocol as
    :class:`~repro.relations.trie.TrieIndex` so the two are pluggable
    behind :class:`repro.engine.backends.IndexBackend`; a node is the
    half-open range ``(lo, hi, depth)`` of rows sharing a length-``depth``
    prefix.  Compared with the hash trie: build is ``O(N log N)`` (one
    sort), point lookups cost ``O(log N)`` (binary search) instead of
    ``O(1)``, but the flat array is cheap to cache and is what the
    leapfrog cursors consume directly.
    """

    __slots__ = ("attributes", "rows", "_source_name", "_distinct")

    #: Backend registry key (see :mod:`repro.engine.backends`).
    kind = "sorted"

    def __init__(self, relation: Relation, attribute_order: Iterable[str]) -> None:
        attrs = tuple(attribute_order)
        if set(attrs) != relation.attribute_set or len(attrs) != len(
            relation.attributes
        ):
            raise SchemaError(
                f"attribute order {attrs!r} is not a permutation of "
                f"{relation.attributes!r}"
            )
        self.attributes = attrs
        self._source_name = relation.name
        idx = relation.positions(attrs)
        self.rows: list[Row] = sorted(
            tuple(row[i] for i in idx) for row in relation.tuples
        )
        # Lazy per-column cumulative distinct-prefix tallies backing the
        # exact O(1) fanout_hint; built on first use (see _distinct_runs).
        self._distinct: list | None = None

    # -- basic protocol ----------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of levels (= attributes) of the index."""
        return len(self.attributes)

    @property
    def root(self) -> RangeNode:
        """The whole-array range: every row shares the empty prefix."""
        return (0, len(self.rows), 0)

    def __len__(self) -> int:
        """Number of indexed tuples (rows are distinct by construction)."""
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"SortedArrayIndex({self._source_name!r}, "
            f"order={self.attributes!r}, |tuples|={len(self)})"
        )

    def cursor(self) -> SortedTrieIterator:
        """A fresh leapfrog cursor sharing this index's sorted array."""
        return SortedTrieIterator.from_sorted_rows(self.rows, self.attributes)

    # -- (ST1): prefix membership -------------------------------------------

    def child(self, node: RangeNode | None, value: Value) -> RangeNode | None:
        """The sub-range of ``node`` whose next column equals ``value``."""
        if node is None:
            return None
        lo, hi, depth = node
        start = self._lower_bound(lo, hi, depth, value)
        if start >= hi or self.rows[start][depth] != value:
            return None
        return (start, self._run_end(start, hi, depth), depth + 1)

    def walk(self, prefix: Iterable[Value]) -> RangeNode | None:
        """Follow ``prefix`` values from the root; ``None`` if absent."""
        return self.descend(self.root, prefix)

    def contains_prefix(self, prefix: Iterable[Value]) -> bool:
        """(ST1) membership of a prefix tuple in the projected relation."""
        return self.walk(prefix) is not None

    def descend(
        self, node: RangeNode | None, values: Iterable[Value]
    ) -> RangeNode | None:
        """Continue a walk from an interior ``node`` (ST1, resumed)."""
        current = node
        for value in values:
            current = self.child(current, value)
            if current is None:
                return None
        return current

    # -- (ST2): projected-section cardinality ---------------------------------

    def count(self, node: RangeNode | None, depth: int) -> int:
        """(ST2) number of distinct length-``depth`` paths below ``node``.

        Unlike the hash trie's precomputed ``counts`` vector this runs one
        gallop per distinct path — ``O(result * log N)`` rather than
        ``O(1)``; the planner prefers the hash backend for count-driven
        algorithms (NPRR's per-tuple case analysis).
        """
        if node is None or depth < 0:
            return 0
        lo, hi, at = node
        if depth == 0:
            return 1
        target = at + depth
        if target > self.arity:
            return 0
        total = 0
        pos = lo
        while pos < hi:
            total += 1
            pos = self._prefix_run_end(pos, hi, target)
        return total

    def prefix_count(self, prefix: Iterable[Value], depth: int) -> int:
        """(ST1)+(ST2) in one call: walk ``prefix`` then count at ``depth``."""
        return self.count(self.walk(prefix), depth)

    # -- (ST3): enumeration ---------------------------------------------------

    def items(self, node: RangeNode | None) -> Iterator[tuple[Value, RangeNode]]:
        """``(value, child range)`` pairs below ``node``, in sorted order."""
        if node is None:
            return
        lo, hi, depth = node
        if depth >= self.arity:
            return
        pos = lo
        rows = self.rows
        while pos < hi:
            end = self._run_end(pos, hi, depth)
            yield rows[pos][depth], (pos, end, depth + 1)
            pos = end

    def fanout(self, node: RangeNode | None) -> int:
        """Number of distinct next-column values below ``node``."""
        return self.fanout_hint(node)

    def _distinct_runs(self, column: int):
        """Cumulative distinct-prefix tallies for ``column`` (lazy).

        ``runs[r]`` is the zero-based ordinal of the run of equal
        ``(column + 1)``-prefixes that row ``r`` belongs to; within any
        node range the distinct next-column count is then
        ``runs[hi - 1] - runs[lo] + 1`` (rows of a node share the
        length-``column`` prefix, so run boundaries inside the range are
        exactly the next-value changes).  One ``array('q')`` per column,
        built on first use in a single pass over the rows.
        """
        if self._distinct is None:
            self._distinct = [None] * len(self.attributes)
        runs = self._distinct[column]
        if runs is None:
            plen = column + 1
            runs = array("q", bytes(8 * len(self.rows)))
            previous = None
            tally = -1
            for r, row in enumerate(self.rows):
                key = row[:plen]
                if key != previous:
                    tally += 1
                    previous = key
                runs[r] = tally
            self._distinct[column] = runs
        return runs

    def fanout_hint(self, node: RangeNode | None) -> int:
        """O(1) **exact** fanout — identical to :meth:`fanout`.

        Hints used to be upper bounds (range width capped by the integer
        endpoint span), which over-counted long duplicate runs and any
        non-integer column.  Exactness matters beyond ranking quality
        now: the aggregate fold prunes subtrees into counts, and its
        smallest-first descent must agree bit-for-bit with the trie and
        compact backends (both already exact) for cross-backend
        telemetry and probe parity.  The first call per column pays one
        O(N) pass to build the cumulative run tallies
        (:meth:`_distinct_runs`); every call after is two array reads.
        """
        if node is None:
            return 0
        lo, hi, depth = node
        if hi - lo <= 1 or depth >= self.arity:
            return hi - lo if depth < self.arity else 0
        runs = self._distinct_runs(depth)
        return runs[hi - 1] - runs[lo] + 1

    def paths(self, node: RangeNode | None, depth: int) -> Iterator[Row]:
        """(ST3) yield every distinct length-``depth`` tuple below ``node``.

        Paths come out in sorted order; each costs ``O(depth + log N)``.
        """
        if node is None or depth < 0:
            return
        if depth == 0:
            yield ()
            return
        lo, hi, at = node
        target = at + depth
        if target > self.arity:
            return
        rows = self.rows
        pos = lo
        while pos < hi:
            yield rows[pos][at:target]
            pos = self._prefix_run_end(pos, hi, target)

    def tuples(self) -> Iterator[Row]:
        """All indexed tuples, in index attribute order (sorted)."""
        return iter(self.rows)

    def nbytes(self) -> int:
        """Estimated resident bytes of the sorted row array.

        The list container plus one tuple object per row (rows share an
        arity, so the first row's size stands for all).  Value objects
        are excluded — they are shared with the source relation — which
        keeps the figure comparable with the other backends' measures.
        """
        total = sys.getsizeof(self.rows)
        if self.rows:
            total += len(self.rows) * sys.getsizeof(self.rows[0])
        if self._distinct is not None:
            for runs in self._distinct:
                if runs is not None:
                    total += sys.getsizeof(runs)
        return total

    def to_relation(self, name: str | None = None) -> Relation:
        """Materialize the index back into a :class:`Relation`."""
        return Relation(
            name if name is not None else self._source_name,
            self.attributes,
            self.rows,
        )

    # -- range arithmetic ------------------------------------------------------

    def _lower_bound(self, lo: int, hi: int, column: int, value: Value) -> int:
        """First row index in ``[lo, hi)`` with ``row[column] >= value``."""
        rows = self.rows
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][column] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _run_end(self, pos: int, end: int, column: int) -> int:
        """First row index past the run sharing ``rows[pos][column]``."""
        rows = self.rows
        value = rows[pos][column]
        step = 1
        lo = pos + 1
        probe = pos + 1
        while probe < end and rows[probe][column] == value:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, end)
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][column] == value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _prefix_run_end(self, pos: int, end: int, plen: int) -> int:
        """First row index past the run sharing ``rows[pos][:plen]``."""
        rows = self.rows
        prefix = rows[pos][:plen]
        step = 1
        lo = pos + 1
        probe = pos + 1
        while probe < end and rows[probe][:plen] == prefix:
            lo = probe + 1
            probe += step
            step *= 2
        hi = min(probe, end)
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][:plen] == prefix:
                lo = mid + 1
            else:
                hi = mid
        return lo
