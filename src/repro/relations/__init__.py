"""Relational substrate: relations, index backends, and the database catalog."""

from repro.relations.database import (
    DEFAULT_BACKEND,
    INDEX_BACKENDS,
    Database,
    WarmReport,
    build_index,
)
from repro.relations.relation import Relation, Row, Value, union_all
from repro.relations.sorted_index import SortedArrayIndex, SortedTrieIterator
from repro.relations.trie import TrieIndex, TrieNode

__all__ = [
    "DEFAULT_BACKEND",
    "Database",
    "INDEX_BACKENDS",
    "Relation",
    "Row",
    "SortedArrayIndex",
    "SortedTrieIterator",
    "TrieIndex",
    "TrieNode",
    "Value",
    "WarmReport",
    "build_index",
    "union_all",
]
