"""Relational substrate: relations, trie indexes, and the database catalog."""

from repro.relations.database import Database
from repro.relations.relation import Relation, Row, Value, union_all
from repro.relations.trie import TrieIndex, TrieNode

__all__ = [
    "Database",
    "Relation",
    "Row",
    "TrieIndex",
    "TrieNode",
    "Value",
    "union_all",
]
