"""Search-tree ("trie") indexes with the paper's (ST1)-(ST3) properties.

Section 5.3.2 of the paper requires, for every relation ``R_e``, a search
tree whose levels follow the relation's attributes *in the total order*
computed from the query-plan tree, supporting:

* **(ST1)** deciding ``t_{a_1..a_i} in pi_{a_1..a_i}(R_e)`` in ``O(i)`` time
  — :meth:`TrieIndex.walk` / :meth:`TrieIndex.contains_prefix`;
* **(ST2)** querying ``|pi_{a_{i+1}..a_j}(R_e[t_{a_1..a_i}])|`` in ``O(i)``
  time — :meth:`TrieIndex.count` after a walk (the per-node ``counts``
  vector is precomputed at build time);
* **(ST3)** listing ``pi_{a_{i+1}..a_j}(R_e[t_{a_1..a_i}])`` in time linear
  in the output — :meth:`TrieIndex.paths`.

The trie is a nested-dictionary structure (hash-based, matching the paper's
hash-index remark in Section 5.1).  Building one relation's trie costs
``O(arity * N)``, so indexing a whole database for one total order costs the
paper's ``O(n^2 sum_e N_e)`` preprocessing term.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import SchemaError
from repro.relations.relation import Relation, Row, Value

#: Approximate bytes per TrieNode: the slotted object (~56) plus its
#: counts list header and entries (~64+).  CPython 3.10-3.12, 64-bit.
_NODE_BYTES = 120

#: Approximate bytes per parent->child edge: one dict entry amortized
#: over CPython's dict growth policy plus the key reference.
_EDGE_BYTES = 104


class TrieNode:
    """One node of a :class:`TrieIndex`.

    ``children`` maps an attribute value to the child node; ``counts[d]`` is
    the number of *distinct* value-paths of length exactly ``d`` below this
    node (``counts[0] == 1`` by convention).  The counts vector is what makes
    property (ST2) an O(1) lookup after the (ST1) walk.
    """

    __slots__ = ("children", "counts")

    def __init__(self) -> None:
        self.children: dict[Value, TrieNode] = {}
        self.counts: list[int] = [1]

    def __repr__(self) -> str:
        return f"TrieNode(fanout={len(self.children)}, counts={self.counts})"


class TrieIndex:
    """A search tree over a relation, with one level per attribute.

    Parameters
    ----------
    relation:
        The relation to index.
    attribute_order:
        The order the trie levels follow.  Must be a permutation of the
        relation's attributes; in Algorithm 2 this is the relation's
        attributes sorted by the query's total order.
    """

    __slots__ = ("attributes", "root", "_source_name")

    #: Backend registry key (see :mod:`repro.engine.backends`).
    kind = "trie"

    def __init__(self, relation: Relation, attribute_order: Iterable[str]) -> None:
        attrs = tuple(attribute_order)
        if set(attrs) != relation.attribute_set or len(attrs) != len(
            relation.attributes
        ):
            raise SchemaError(
                f"attribute order {attrs!r} is not a permutation of "
                f"{relation.attributes!r}"
            )
        self.attributes = attrs
        self._source_name = relation.name
        self.root = TrieNode()
        idx = relation.positions(attrs)
        for row in relation.tuples:
            node = self.root
            for i in idx:
                value = row[i]
                child = node.children.get(value)
                if child is None:
                    child = TrieNode()
                    node.children[value] = child
                node = child
        _compute_counts(self.root)

    # -- basic protocol ----------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of levels (= attributes) of the trie."""
        return len(self.attributes)

    def __len__(self) -> int:
        """Number of indexed tuples (distinct full paths)."""
        depth = self.arity
        counts = self.root.counts
        return counts[depth] if depth < len(counts) else 0

    def __repr__(self) -> str:
        return (
            f"TrieIndex({self._source_name!r}, order={self.attributes!r}, "
            f"|tuples|={len(self)})"
        )

    # -- (ST1): prefix membership -------------------------------------------

    def walk(self, prefix: Iterable[Value]) -> TrieNode | None:
        """Follow ``prefix`` values from the root; ``None`` if absent.

        ``prefix`` must align with ``self.attributes[:len(prefix)]``.  This is
        the paper's "stepping down the tree" primitive (ST1).
        """
        node: TrieNode | None = self.root
        for value in prefix:
            node = node.children.get(value)  # type: ignore[union-attr]
            if node is None:
                return None
        return node

    def contains_prefix(self, prefix: Iterable[Value]) -> bool:
        """(ST1) membership of a prefix tuple in the projected relation."""
        return self.walk(prefix) is not None

    def child(self, node: TrieNode | None, value: Value) -> TrieNode | None:
        """The child of ``node`` under ``value`` (one (ST1) step)."""
        if node is None:
            return None
        return node.children.get(value)

    def items(self, node: TrieNode | None) -> Iterator[tuple[Value, TrieNode]]:
        """``(value, child)`` pairs below ``node`` (hash order)."""
        if node is None:
            return iter(())
        return iter(node.children.items())

    def fanout(self, node: TrieNode | None) -> int:
        """Number of distinct next-level values below ``node``."""
        if node is None:
            return 0
        return len(node.children)

    def fanout_hint(self, node: TrieNode | None) -> int:
        """O(1) upper bound on :meth:`fanout` (exact for the hash trie).

        Executors rank candidate relations with this (smallest-first
        intersection); it must be cheap, not exact.
        """
        if node is None:
            return 0
        return len(node.children)

    def descend(self, node: TrieNode, values: Iterable[Value]) -> TrieNode | None:
        """Continue a walk from an interior ``node`` (ST1, resumed)."""
        current: TrieNode | None = node
        for value in values:
            current = current.children.get(value)  # type: ignore[union-attr]
            if current is None:
                return None
        return current

    # -- (ST2): projected-section cardinality ---------------------------------

    def count(self, node: TrieNode | None, depth: int) -> int:
        """(ST2) number of distinct length-``depth`` paths below ``node``.

        Equals ``|pi_{next 'depth' attributes}(R[prefix])|`` for the prefix
        that led to ``node``.  A ``None`` node (failed walk) counts 0.
        """
        if node is None:
            return 0
        counts = node.counts
        return counts[depth] if depth < len(counts) else 0

    def prefix_count(self, prefix: Iterable[Value], depth: int) -> int:
        """(ST1)+(ST2) in one call: walk ``prefix`` then count at ``depth``."""
        return self.count(self.walk(prefix), depth)

    # -- (ST3): enumeration ---------------------------------------------------

    def paths(self, node: TrieNode | None, depth: int) -> Iterator[Row]:
        """(ST3) yield every distinct length-``depth`` tuple below ``node``.

        Output-linear: each yielded tuple costs ``O(depth)``.  The
        traversal keeps an explicit stack of child iterators, so arity is
        bounded by memory, not by Python's recursion limit.
        """
        if node is None or depth < 0:
            return
        if depth == 0:
            yield ()
            return
        prefix: list[Value] = []
        stack: list[Iterator[tuple[Value, TrieNode]]] = [
            iter(node.children.items())
        ]
        while stack:
            entry = next(stack[-1], None)
            if entry is None:
                stack.pop()
                if prefix:
                    prefix.pop()
                continue
            value, child = entry
            if len(stack) == depth:
                yield (*prefix, value)
            else:
                prefix.append(value)
                stack.append(iter(child.children.items()))

    def tuples(self) -> Iterator[Row]:
        """All indexed tuples, in trie attribute order."""
        return self.paths(self.root, self.arity)

    def nbytes(self) -> int:
        """Estimated resident bytes of the trie structure.

        Node and edge totals come from the root's precomputed counts
        vector (``counts[d]`` = distinct paths at depth ``d``, so nodes
        = ``1 + sum`` and edges = nodes - 1); the per-node and per-edge
        constants approximate a slotted ``TrieNode`` plus its ``counts``
        list and one small-dict entry.  An estimate — the dict-heavy
        layout has no exact cheap measure — but consistently scaled, so
        the cache's byte accounting ranks backends fairly.
        """
        nodes = 1 + sum(self.root.counts[1:])
        edges = nodes - 1
        return _NODE_BYTES * nodes + _EDGE_BYTES * edges

    def to_relation(self, name: str | None = None) -> Relation:
        """Materialize the trie back into a :class:`Relation`."""
        return Relation(
            name if name is not None else self._source_name,
            self.attributes,
            self.tuples(),
        )


def _compute_counts(root: TrieNode) -> None:
    """Fill every node's ``counts`` vector bottom-up (iterative DFS)."""
    # Post-order traversal without recursion: (node, visited-flag) stack.
    stack: list[tuple[TrieNode, bool]] = [(root, False)]
    while stack:
        node, done = stack.pop()
        if not done:
            stack.append((node, True))
            for child in node.children.values():
                stack.append((child, False))
            continue
        if not node.children:
            node.counts = [1]
            continue
        max_child = max(len(child.counts) for child in node.children.values())
        counts = [1] + [0] * max_child
        for child in node.children.values():
            child_counts = child.counts
            for d, c in enumerate(child_counts):
                counts[d + 1] += c
        node.counts = counts
