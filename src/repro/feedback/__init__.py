"""Runtime feedback: the execution-telemetry half of adaptivity.

The statistics subsystem (:mod:`repro.stats`) estimates before running;
this package measures *while* running and feeds the measurements back:

* :mod:`repro.feedback.telemetry` — per-level candidate/match/partial
  counters threaded through the executors (off by default, zero-cost
  when off), frozen observation records, and the estimate-vs-observed
  divergence metric;
* :mod:`repro.feedback.config` — :class:`FeedbackConfig`, the knob
  object an :class:`~repro.query.context.ExecutionContext` carries to
  switch the loop on;
* :mod:`repro.feedback.resharding` — the online "Skew Strikes Back"
  split: shards that ran hot are re-partitioned on the next attribute
  on the following run.

Ingestion lives on :class:`~repro.stats.provider.StatsProvider`
(``record_levels`` / ``observed_levels`` / ``record_shards`` /
``observed_shards``), so observations share the statistics cache's
relation-identity keying and invalidation rules.
"""

from repro.feedback.config import FeedbackConfig
from repro.feedback.resharding import ShardPlanEntry, expand_shards
from repro.feedback.telemetry import (
    ExecutionTelemetry,
    ObservedLevel,
    ShardObservation,
    TelemetryProbe,
    estimate_divergence,
    feedback_scope,
)

__all__ = [
    "ExecutionTelemetry",
    "FeedbackConfig",
    "ObservedLevel",
    "ShardObservation",
    "ShardPlanEntry",
    "TelemetryProbe",
    "estimate_divergence",
    "expand_shards",
    "feedback_scope",
]
