"""Online re-sharding: split the shards that ran hot.

``shards="auto"`` sizes the shard count from *predicted* skew (heavy-
hitter mass); this module closes the loop with *measured* skew.  The
sharded driver records each shard's wall time as a
:class:`~repro.feedback.telemetry.ShardObservation`; on the next run of
the same query, :func:`expand_shards` compares every planned shard
against its recorded siblings and re-partitions the hot ones — wall
time above ``split_threshold`` times the sibling median — on the *next*
attribute of the plan's order, dispatching the sub-shards in the parent
shard's place.  Splits recurse: a sub-shard that itself runs hot is
split on the attribute after that, one level deeper per run, bounded by
``max_split_depth`` and the order's length.

This is the online half of the "Skew Strikes Back" split (the ROADMAP's
"online re-sharding" item): the offline half guesses where the heavy
values are; this half *measures* where the time went, and the next run
carves exactly there.  Correctness is inherited from first-attribute
sharding — a sub-shard restricts the parent shard's relations to a
value group of one more attribute, so sub-shards partition the parent's
output slice exactly as the parent partitions the whole join's.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from collections.abc import Mapping, Sequence

from repro.core.query import JoinQuery
from repro.feedback.config import FeedbackConfig
from repro.feedback.telemetry import ShardKey, ShardObservation

__all__ = ["ShardPlanEntry", "expand_shards"]


@dataclass(frozen=True)
class ShardPlanEntry:
    """One dispatchable shard after feedback expansion.

    ``key`` chains the ``(attribute, value group)`` restrictions that
    produced the shard (length 1 for an unsplit top-level shard);
    ``query`` is the correspondingly restricted join query and
    ``weight`` the LPT work estimate of the final restriction.
    """

    key: ShardKey
    query: JoinQuery
    weight: int


def _hot(
    observation: ShardObservation,
    observed: Mapping[ShardKey, ShardObservation],
    config: FeedbackConfig,
) -> bool:
    """Did this shard run hot relative to its recorded siblings?

    Siblings are the *other* observations at the same depth under the
    same parent key — the shard is compared against the median of its
    peers, not of a pool including itself (with two shards, a
    pool-inclusive median would let a shard twice its sibling's time
    sit below any threshold above 4/3).  A shard with no recorded
    siblings is never hot: there is no distribution to stand out from.
    """
    key = observation.key
    siblings = [
        entry.seconds
        for entry_key, entry in observed.items()
        if len(entry_key) == len(key)
        and entry_key[:-1] == key[:-1]
        and entry_key != key
    ]
    if not siblings:
        return False
    if observation.seconds < config.min_split_seconds:
        return False
    return observation.seconds > config.split_threshold * median(siblings)


def expand_shards(
    entries: Sequence[ShardPlanEntry],
    order: Sequence[str],
    observed: Mapping[ShardKey, ShardObservation],
    config: FeedbackConfig,
) -> list[ShardPlanEntry]:
    """Replace recorded-hot shards with sub-shards on the next attribute.

    ``entries`` are the statically planned top-level shards; ``order``
    is the plan's attribute order (a shard at depth ``d`` splits on
    ``order[d]``).  Shards without an observation — first run, or the
    shard layout changed — pass through untouched, so the expansion is
    exactly the static plan until something has been measured.  The
    result is deterministic for a fixed observation store.
    """
    from repro.engine.parallel import _shard_queries, plan_shards

    result: list[ShardPlanEntry] = []
    stack = list(reversed(entries))
    while stack:
        entry = stack.pop()
        depth = len(entry.key)
        observation = observed.get(entry.key)
        if (
            observation is None
            or depth - 1 >= config.max_split_depth
            or depth >= len(order)
            or not _hot(observation, observed, config)
        ):
            result.append(entry)
            continue
        attribute = order[depth]
        sub_specs = plan_shards(entry.query, config.split_factor, attribute)
        if len(sub_specs) < 2:
            # The next attribute has too few candidate values under this
            # shard to partition; the split would be a rename.
            result.append(entry)
            continue
        sub_queries = _shard_queries(entry.query, sub_specs)
        # Sub-entries go back on the stack: one that *also* has a hot
        # observation (recorded by a previous split run) splits again,
        # one attribute deeper.
        for spec, sub_query in zip(
            reversed(sub_specs), reversed(sub_queries)
        ):
            stack.append(
                ShardPlanEntry(
                    key=entry.key + ((attribute, spec.values),),
                    query=sub_query,
                    weight=spec.weight,
                )
            )
    return result
