"""Execution telemetry: what a join run actually did, per level.

The planner's order descent works from *estimates* — sampled
selectivities, distinct counts, AGM sub-bounds.  This module defines the
*measurements* that calibrate them: cheap per-level counters threaded
through the attribute-at-a-time executors (Generic Join, Leapfrog
Triejoin) recording, for every level of the executed attribute order,

* **partials** — how many partial tuples reached the level (the true
  partial-result size the descent tried to estimate),
* **candidates** — how many candidate values the level enumerated (the
  level's actual work), and
* **matches** — how many candidates survived the intersection (became
  partials of the next level).

From these fall out the two observed quantities the feedback planner
consumes: the level's **selectivity** ``matches / candidates`` (a level
with selectivity ~1 pruned nothing — the trap the min-distinct heuristic
walks into) and its **per-prefix fan-out** ``matches / partials`` (the
hub expansion "Skew Strikes Back" warns about, which distinct counts and
pairwise selectivities both miss).

Telemetry is **off by default and zero-cost when off**: executors keep
their uninstrumented search paths and only switch to the counting
variants when a :class:`TelemetryProbe` is attached, so un-instrumented
runs execute byte-identical code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ExecutionTelemetry",
    "ObservedLevel",
    "ShardObservation",
    "TelemetryProbe",
    "estimate_divergence",
    "feedback_scope",
    "level_estimates",
]


def feedback_scope(filters) -> tuple:
    """The observation-scope key for a residual-filter mapping.

    Telemetry from a filtered execution describes *different*
    cardinalities than the unfiltered query over the same relations;
    this signature keeps their observations apart in the provider (it
    is passed as the ``scope`` argument of the recording and lookup
    methods).  Predicates without a ``describe`` (raw callables handed
    to the parallel driver directly) fall back to ``repr`` — unstable
    across processes, which errs on the safe side: never reused, never
    cross-polluting.
    """
    if not filters:
        return ()
    parts = []
    for attribute in sorted(filters):
        predicate = filters[attribute]
        describe = getattr(predicate, "describe", None)
        parts.append(
            (attribute, describe() if describe else repr(predicate))
        )
    return tuple(parts)


class TelemetryProbe:
    """Mutable per-level counters, written directly by instrumented
    executors (``probe.partials[depth] += 1`` — attribute access on
    plain lists, no method-call overhead in the search loop).

    One probe observes one attribute order; :meth:`reset` re-arms it for
    another run of the same executor (a prepared query's repeated
    ``stream()`` calls share one probe).
    """

    __slots__ = ("order", "partials", "candidates", "matches")

    def __init__(self, order: tuple[str, ...]) -> None:
        self.order = tuple(order)
        self.reset()

    def reset(self) -> None:
        """Zero every counter (one probe, many runs)."""
        n = len(self.order)
        self.partials = [0] * n
        self.candidates = [0] * n
        self.matches = [0] * n

    def snapshot(
        self, rows: int, seconds: float, complete: bool
    ) -> "ExecutionTelemetry":
        """Freeze the counters into an :class:`ExecutionTelemetry`."""
        levels = tuple(
            ObservedLevel(
                attribute=attribute,
                position=i,
                prefix=self.order[:i],
                partials=self.partials[i],
                candidates=self.candidates[i],
                matches=self.matches[i],
            )
            for i, attribute in enumerate(self.order)
        )
        return ExecutionTelemetry(
            attribute_order=self.order,
            levels=levels,
            rows=rows,
            seconds=seconds,
            complete=complete,
        )


@dataclass(frozen=True)
class ObservedLevel:
    """One level of one executed attribute order, measured.

    ``prefix`` records the attributes bound *above* this level in the
    run that produced the observation — :attr:`fanout` is the exact
    per-prefix fan-out for that prefix, and only an approximation for
    any other.
    """

    attribute: str
    #: Depth at which the attribute was bound (0 = first).
    position: int
    #: Attributes bound above this level, in execution order.
    prefix: tuple[str, ...]
    #: Partial tuples that reached the level.
    partials: int
    #: Candidate values the level enumerated.
    candidates: int
    #: Candidates surviving the intersection (next level's partials).
    matches: int

    @property
    def selectivity(self) -> float:
        """``matches / candidates`` — 1.0 means the level pruned nothing."""
        if self.candidates <= 0:
            return 1.0
        return self.matches / self.candidates

    @property
    def fanout(self) -> float:
        """``matches / partials`` — average expansion per partial tuple."""
        if self.partials <= 0:
            return 0.0
        return self.matches / self.partials


@dataclass(frozen=True)
class ExecutionTelemetry:
    """Everything one run measured (frozen, picklable).

    ``complete`` is False when the consumer abandoned the row stream
    early — the counters then undercount and must not be fed back.
    """

    attribute_order: tuple[str, ...]
    levels: tuple[ObservedLevel, ...]
    rows: int
    seconds: float
    complete: bool

    def level(self, attribute: str) -> ObservedLevel | None:
        """The observation for ``attribute``, or None."""
        for observed in self.levels:
            if observed.attribute == attribute:
                return observed
        return None

    @property
    def total_candidates(self) -> int:
        """Summed candidate enumerations — the run's search work, in
        data-dependent (wall-clock-free) units."""
        return sum(level.candidates for level in self.levels)


#: A shard's identity across runs: the chain of ``(attribute, values)``
#: restrictions that produced it.  Top-level shards have one link;
#: every recursive split appends one.
ShardKey = tuple[tuple[str, frozenset], ...]


@dataclass(frozen=True)
class ShardObservation:
    """One shard's measured run (frozen, picklable).

    ``key`` is the shard's :data:`ShardKey` — stable across runs because
    shard planning is deterministic for unchanged data — so a later run
    can recognize the same shard and split it if it ran hot.
    """

    key: ShardKey
    seconds: float
    rows: int
    #: The LPT work estimate the shard was planned with.
    weight: int

    @property
    def depth(self) -> int:
        """How many split levels produced this shard (1 = top level)."""
        return len(self.key)


def level_estimates(statistics) -> tuple[tuple[str, float], ...]:
    """A plan's per-level partial-size estimates, explicit or implied.

    Sampled and feedback plans carry ``order_estimates`` directly;
    heuristic plans imply them — the min-distinct descent's implicit
    model is that each level fans out by at most its distinct score, so
    the running product of scores is the estimate observed counts are
    held against.  Shared by the prepared query's re-plan trigger and
    ``EXPLAIN ANALYZE``'s estimated-vs-observed table; accepts ``None``
    (no statistics recorded) and returns ``()``.
    """
    if statistics is None:
        return ()
    if statistics.order_estimates:
        return statistics.order_estimates
    derived: list[tuple[str, float]] = []
    cumulative = 1.0
    for attribute, score in statistics.distinct_counts:
        cumulative *= max(score, 1)
        derived.append((attribute, cumulative))
    return tuple(derived)


def estimate_divergence(
    estimates: tuple[tuple[str, float], ...],
    telemetry: ExecutionTelemetry,
) -> float:
    """How far a plan's per-level partial-size estimates missed reality.

    ``estimates`` are ``(attribute, estimated partials after binding)``
    pairs in plan order (a :class:`~repro.stats.provider.PlanStatistics`
    ``order_estimates`` field); the observation's ``matches`` at each
    level is the true count.  Returns the worst per-level ratio in
    either direction (``>= 1.0``); both overestimates and underestimates
    count — a plan built on wrong cardinalities deserves re-planning
    whichever way it was wrong.  Levels the telemetry did not observe
    (order mismatch) are skipped.
    """
    worst = 1.0
    for attribute, estimate in estimates:
        observed = telemetry.level(attribute)
        if observed is None:
            continue
        actual = float(max(observed.matches, 1))
        expected = max(float(estimate), 1.0)
        ratio = max(actual / expected, expected / actual)
        if ratio > worst:
            worst = ratio
    return worst
