"""FeedbackConfig: the runtime-feedback knobs, in one frozen object.

Attached to an :class:`~repro.query.context.ExecutionContext` as its
``feedback`` field (``None`` = feedback off, the default).  Presence
enables both halves of the loop:

* **recording** — executions carry telemetry probes and write their
  observations (per-level counts, per-shard wall times) back into the
  :class:`~repro.stats.provider.StatsProvider`;
* **application** — the planner prefers observed statistics over sampled
  ones, the sharded driver splits shards that ran hot, and prepared
  queries re-plan when observation diverges from estimate.

The object is frozen and hashable so contexts carrying it stay usable
as cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError

__all__ = ["FeedbackConfig"]


@dataclass(frozen=True)
class FeedbackConfig:
    """Every knob of the runtime feedback loop (frozen, hashable)."""

    #: A shard ran *hot* when its wall time exceeds this factor times
    #: the median of its sibling shards; hot shards are re-partitioned
    #: on the next attribute of the order on the following run.
    split_threshold: float = 2.0
    #: Sub-shards a hot shard is split into.
    split_factor: int = 2
    #: Maximum recursive split depth *below* the top level (1 means a
    #: hot top-level shard may split once; its sub-shards never split).
    max_split_depth: int = 2
    #: Shards faster than this never split, whatever the ratio —
    #: guards against chasing scheduling noise on trivial shards.
    min_split_seconds: float = 0.0
    #: A prepared query re-plans when the worst per-level ratio between
    #: estimated and observed partial-result sizes exceeds this.
    replan_tolerance: float = 4.0
    #: An *untried* order proposed by the feedback descent is executed
    #: (explored) only when its estimated total work is below this
    #: fraction of the best recorded order's measured work; otherwise
    #: the planner keeps the best order it has actually measured.
    #: Greedy re-estimation from a good run's telemetry can propose
    #: plausible-but-worse orders — this margin is the hysteresis that
    #: stops the loop from oscillating on them.
    explore_margin: float = 0.5

    def __post_init__(self) -> None:
        if self.split_threshold < 1.0:
            raise PlanError(
                f"split_threshold must be >= 1, got {self.split_threshold!r}"
            )
        if not isinstance(self.split_factor, int) or self.split_factor < 2:
            raise PlanError(
                f"split_factor must be an int >= 2, got {self.split_factor!r}"
            )
        if (
            not isinstance(self.max_split_depth, int)
            or self.max_split_depth < 0
        ):
            raise PlanError(
                f"max_split_depth must be an int >= 0, "
                f"got {self.max_split_depth!r}"
            )
        if self.min_split_seconds < 0:
            raise PlanError(
                f"min_split_seconds must be >= 0, "
                f"got {self.min_split_seconds!r}"
            )
        if self.replan_tolerance < 1.0:
            raise PlanError(
                f"replan_tolerance must be >= 1, "
                f"got {self.replan_tolerance!r}"
            )
        if self.explore_margin < 0.0:
            raise PlanError(
                f"explore_margin must be >= 0, got {self.explore_margin!r}"
            )
