"""CSV import/export for relations.

Downstream users mostly have tables, not Python literals.  This module
reads/writes relations as plain CSV with a header row of attribute names:

    A,B
    0,1
    1,2

Values are read as integers when every cell in the column parses as one
(the paper's instances are integer-valued), and as strings otherwise; a
``types`` override is available for mixed data.
"""

from __future__ import annotations

import csv
import pathlib
from collections.abc import Callable, Mapping, Sequence

from repro.errors import SchemaError
from repro.relations.relation import Relation

#: A per-attribute parser, e.g. ``int`` or ``str``.
Parser = Callable[[str], object]


def load_relation_csv(
    path: str | pathlib.Path,
    name: str | None = None,
    types: Mapping[str, Parser] | None = None,
) -> Relation:
    """Read a relation from a headered CSV file.

    Parameters
    ----------
    path:
        CSV file with attribute names in the first row.
    name:
        Relation name; defaults to the file's stem.
    types:
        Optional per-attribute parsers.  Attributes not listed use
        automatic typing (int when every value parses, else str).
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty file (need a header row)") from None
        attributes = tuple(col.strip() for col in header)
        raw_rows = [tuple(row) for row in reader if row]
    for row in raw_rows:
        if len(row) != len(attributes):
            raise SchemaError(
                f"{path}: row {row!r} has {len(row)} cells, header has "
                f"{len(attributes)}"
            )

    parsers: list[Parser] = []
    for index, attribute in enumerate(attributes):
        if types is not None and attribute in types:
            parsers.append(types[attribute])
        else:
            column = [row[index] for row in raw_rows]
            parsers.append(int if _all_ints(column) else str)
    rows = [
        tuple(parse(cell) for parse, cell in zip(parsers, row))
        for row in raw_rows
    ]
    return Relation(name if name is not None else path.stem, attributes, rows)


def save_relation_csv(relation: Relation, path: str | pathlib.Path) -> None:
    """Write a relation as headered CSV (rows sorted for determinism)."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.attributes)
        for row in sorted(relation.tuples, key=repr):
            writer.writerow(row)


def load_database_csv(
    paths: Sequence[str | pathlib.Path],
    types: Mapping[str, Parser] | None = None,
) -> list[Relation]:
    """Load several CSV files (one relation each, named by file stem)."""
    return [load_relation_csv(p, types=types) for p in paths]


def _all_ints(column: Sequence[str]) -> bool:
    if not column:
        return True
    for cell in column:
        try:
            int(cell)
        except ValueError:
            return False
    return True
