"""Seeded random instance generators for tests and benchmarks.

Everything is driven by :class:`random.Random` with an explicit seed, so
tests and benchmark tables are reproducible.  NumPy is deliberately not
required — the library itself stays dependency-free.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.relation import Relation


def random_relation(
    name: str,
    attributes: Sequence[str],
    size: int,
    domain: int,
    rng: random.Random,
) -> Relation:
    """A uniform random relation: ``size`` draws from ``[0, domain)^k``.

    Duplicates collapse, so the realized size can be slightly below
    ``size`` when ``domain**k`` is small.
    """
    attrs = tuple(attributes)
    rows = {
        tuple(rng.randrange(domain) for _ in attrs) for _ in range(size)
    }
    return Relation(name, attrs, rows)


def zipf_relation(
    name: str,
    attributes: Sequence[str],
    size: int,
    domain: int,
    rng: random.Random,
    exponent: float = 1.2,
) -> Relation:
    """A skewed relation: values drawn from a Zipf-like distribution.

    Low values are heavily over-represented — the fan-out skew that
    motivates the paper's heavy/light split (and [36]'s production trick).
    """
    weights = [1.0 / (v + 1) ** exponent for v in range(domain)]
    values = list(range(domain))
    rows = {
        tuple(rng.choices(values, weights=weights)[0] for _ in attributes)
        for _ in range(size)
    }
    return Relation(name, tuple(attributes), rows)


def random_instance(
    hypergraph: Hypergraph,
    size: int,
    domain: int,
    seed: int = 0,
    skew: float | None = None,
) -> JoinQuery:
    """Bind every edge of ``hypergraph`` to a random relation."""
    rng = random.Random(seed)
    relations = {}
    for eid, members in hypergraph.edges.items():
        attrs = tuple(a for a in hypergraph.vertices if a in members)
        if skew is None:
            relations[eid] = random_relation(eid, attrs, size, domain, rng)
        else:
            relations[eid] = zipf_relation(
                eid, attrs, size, domain, rng, exponent=skew
            )
    return JoinQuery.from_hypergraph(hypergraph, relations)


def random_hypergraph(
    n_vertices: int,
    n_edges: int,
    max_arity: int,
    seed: int = 0,
) -> Hypergraph:
    """A random connected-ish hypergraph in which every vertex is covered.

    Each edge picks an arity in ``[1, max_arity]`` and a random vertex
    subset; uncovered vertices are then patched into random edges so a
    fractional cover always exists.
    """
    if n_vertices < 1 or n_edges < 1:
        raise QueryError("need at least one vertex and one edge")
    rng = random.Random(seed)
    vertices = tuple(f"A{i}" for i in range(1, n_vertices + 1))
    edges: dict[str, set[str]] = {}
    for j in range(1, n_edges + 1):
        arity = rng.randint(1, min(max_arity, n_vertices))
        edges[f"R{j}"] = set(rng.sample(vertices, arity))
    covered = set().union(*edges.values())
    for vertex in vertices:
        if vertex in covered:
            continue
        # Patch into an edge with spare arity, else add a singleton edge.
        candidates = [
            eid for eid, e in sorted(edges.items()) if len(e) < max_arity
        ]
        if candidates:
            edges[rng.choice(candidates)].add(vertex)
        else:
            edges[f"R{len(edges) + 1}"] = {vertex}
    return Hypergraph(vertices, {eid: tuple(sorted(e)) for eid, e in edges.items()})


def dense_triangle(
    nodes: int,
    degree: int = 4,
    seed: int = 0,
) -> JoinQuery:
    """A triangle instance over a *dense* consecutive-integer domain.

    Every vertex id in ``[0, nodes)`` appears in every column of every
    edge relation: each node gets one deterministic "ring" out-edge
    (guaranteeing full coverage of both columns) plus ``degree - 1``
    random extras.  First index levels are therefore exact integer
    intervals — density 1.0, the regime where the compact backend's
    radix seeks replace hashing and galloping outright.  This is the
    dense-domain workload of the compact benchmark
    (``benchmarks/bench_compact.py``).
    """
    if nodes < 2 or degree < 1:
        raise QueryError("dense_triangle needs nodes >= 2 and degree >= 1")
    rng = random.Random(seed)

    def edge_rows(shift: int) -> set[tuple[int, int]]:
        rows = set()
        for u in range(nodes):
            rows.add((u, (u + shift) % nodes))
            rows.add(((u + shift) % nodes, u))
            for _ in range(degree - 1):
                rows.add((u, rng.randrange(nodes)))
        return rows

    return JoinQuery(
        [
            Relation("R", ("A", "B"), edge_rows(1)),
            Relation("S", ("B", "C"), edge_rows(2)),
            Relation("T", ("A", "C"), edge_rows(3)),
        ]
    )


def zipf_trap_triangle(
    nodes: int,
    size: int,
    seed: int = 0,
    match_fraction: float = 0.05,
    decoy_domain: int = 8,
    exponent: float = 1.1,
    c_domain: int | None = None,
) -> JoinQuery:
    """A triangle where the min-distinct heuristic starts at the wrong
    attribute — the workload the statistics benchmark is built on.

    ``B`` is the *decoy*: it has only ``decoy_domain`` distinct values
    (so ascending-distinct-count puts it first) drawn Zipf-skewed (so a
    few hub values dominate), but every ``B`` value of ``R`` appears in
    ``S`` — binding ``B`` first prunes nothing and fans out through the
    hubs.  ``A`` is the *payoff*: it has more distinct values, but
    ``T`` only contains the first ``match_fraction`` of them, so a plan
    that binds ``A`` first kills ~``1 - match_fraction`` of the search
    at depth one.  Sampled conditional selectivities see exactly this
    (``P(match in T | tuple of R) ~= match_fraction``); distinct counts
    cannot.

    ``c_domain`` (default: ``nodes``) shrinks ``C``'s domain
    independently.  With ``c_domain`` between ``decoy_domain`` and the
    matched ``A`` count, ``C`` becomes a *second* decoy: the
    min-distinct heuristic then defers the payoff ``A`` to the very
    last level (order ``B, C, A``), where the pruning it would have
    done at depth one is paid as dead-end enumeration at depth three —
    the amplified trap the runtime-feedback benchmark measures.
    """
    rng = random.Random(seed)
    weights = [1.0 / (v + 1) ** exponent for v in range(decoy_domain)]
    decoys = list(range(decoy_domain))
    matched = max(1, int(nodes * match_fraction))
    c_values = nodes if c_domain is None else c_domain
    r_rows = {
        (rng.randrange(nodes), rng.choices(decoys, weights=weights)[0])
        for _ in range(size)
    }
    s_rows = {
        (rng.choices(decoys, weights=weights)[0], rng.randrange(c_values))
        for _ in range(size)
    }
    t_rows = {
        (rng.randrange(matched), rng.randrange(c_values)) for _ in range(size)
    }
    return JoinQuery(
        [
            Relation("R", ("A", "B"), r_rows),
            Relation("S", ("B", "C"), s_rows),
            Relation("T", ("A", "C"), t_rows),
        ]
    )


def hub_triangle(
    light_domain: int = 300,
    b_domain: int = 500,
    c_domain: int = 12000,
    r_size: int = 3000,
    s_size: int = 8000,
    t_size: int = 24000,
    r_hub: float = 0.8,
    t_hub: float = 0.92,
    seed: int = 0,
) -> JoinQuery:
    """A triangle with one extreme hub value — the online-re-sharding
    workload (Zipf skew taken to its limit).

    Value ``0`` of attribute ``A`` carries ``r_hub`` of ``R``'s and
    ``t_hub`` of ``T``'s probability mass; the remaining mass spreads
    over ``light_domain - 1`` light values.  First-attribute sharding
    can give the hub its own shard (the offline heavy-hitter split) but
    can never subdivide it — a single value is atomic under value
    partitioning — so the hub shard's deep work (``R[0] ⋈ S ⋈ T[0]``,
    fanning through ``b_domain × c_domain``) dominates the critical
    path however many shards are planned.  Splitting the hub shard on
    the *next* attribute of the order is the only remedy, and because
    ``S`` and ``T`` contain that attribute, the split also halves their
    per-shard index builds.  That is precisely what the runtime
    feedback loop's recursive hot-shard split does — this generator
    exists to measure it.
    """
    rng = random.Random(seed)

    def a_value(hub_mass: float) -> int:
        if rng.random() < hub_mass:
            return 0
        return rng.randrange(1, light_domain)

    r_rows = {
        (a_value(r_hub), rng.randrange(b_domain)) for _ in range(r_size)
    }
    s_rows = {
        (rng.randrange(b_domain), rng.randrange(c_domain))
        for _ in range(s_size)
    }
    t_rows = {
        (a_value(t_hub), rng.randrange(c_domain)) for _ in range(t_size)
    }
    return JoinQuery(
        [
            Relation("R", ("A", "B"), r_rows),
            Relation("S", ("B", "C"), s_rows),
            Relation("T", ("A", "C"), t_rows),
        ]
    )


def tripartite_triangle_instance(
    nodes: int,
    edges_per_pair: int,
    seed: int = 0,
    hub: bool = False,
) -> JoinQuery:
    """Triangle listing on a random tripartite graph (benchmark E9).

    Parts ``A``, ``B``, ``C`` each have ``nodes`` vertices; every pair of
    parts gets ``edges_per_pair`` random edges.  With ``hub=True``, one
    vertex per part is additionally connected to *everything* in the next
    part — the skew that cripples binary plans.
    """
    rng = random.Random(seed)

    def edge_set(extra_hub: bool) -> set[tuple[int, int]]:
        out = set()
        while len(out) < min(edges_per_pair, nodes * nodes):
            out.add((rng.randrange(nodes), rng.randrange(nodes)))
        if extra_hub:
            out |= {(0, v) for v in range(nodes)}
            out |= {(v, 0) for v in range(nodes)}
        return out

    return JoinQuery(
        [
            Relation("R", ("A", "B"), edge_set(hub)),
            Relation("S", ("B", "C"), edge_set(hub)),
            Relation("T", ("A", "C"), edge_set(hub)),
        ]
    )
