"""Workloads: the paper's instance families, generators, named queries."""

from repro.workloads import generators, instances, queries

__all__ = ["generators", "instances", "queries"]
