"""Named query hypergraphs used throughout the paper and the benchmarks.

Each builder returns a :class:`~repro.hypergraph.Hypergraph` with a
deterministic edge order (which fixes Algorithm 3's ``e_1..e_m``).  Bind
relations with :meth:`repro.core.query.JoinQuery.from_hypergraph` or the
instance builders in :mod:`repro.workloads.instances`.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph, lw_hypergraph


def triangle() -> Hypergraph:
    """The motivating query (1): ``R(A,B) join S(B,C) join T(A,C)``."""
    return Hypergraph(
        ("A", "B", "C"),
        {"R": ("A", "B"), "S": ("B", "C"), "T": ("A", "C")},
    )


def lw_query(n: int) -> Hypergraph:
    """The Loomis-Whitney query on ``n`` attributes (Section 4)."""
    return lw_hypergraph(n)


def cycle_query(k: int) -> Hypergraph:
    """The k-cycle: ``R_i(A_i, A_{i+1})`` with wraparound (Section 7.1)."""
    if k < 2:
        raise QueryError(f"cycles need k >= 2, got {k}")
    vertices = tuple(f"A{i}" for i in range(1, k + 1))
    edges = {
        f"R{i}": (vertices[i - 1], vertices[i % k])
        for i in range(1, k + 1)
    }
    return Hypergraph(vertices, edges)


def path_query(k: int) -> Hypergraph:
    """The k-edge path ``R_i(A_i, A_{i+1})`` (acyclic baseline shape)."""
    if k < 1:
        raise QueryError(f"paths need k >= 1 edges, got {k}")
    vertices = tuple(f"A{i}" for i in range(1, k + 2))
    edges = {
        f"R{i}": (vertices[i - 1], vertices[i]) for i in range(1, k + 1)
    }
    return Hypergraph(vertices, edges)


def star_query(k: int) -> Hypergraph:
    """A star: ``R_i(Hub, A_i)`` for ``i = 1..k`` (Lemma 7.2's weight-1
    shape)."""
    if k < 1:
        raise QueryError(f"stars need k >= 1 edges, got {k}")
    vertices = ("Hub",) + tuple(f"A{i}" for i in range(1, k + 1))
    edges = {f"R{i}": ("Hub", f"A{i}") for i in range(1, k + 1)}
    return Hypergraph(vertices, edges)


def clique_query(k: int) -> Hypergraph:
    """The k-clique: one binary relation per vertex pair."""
    if k < 2:
        raise QueryError(f"cliques need k >= 2, got {k}")
    vertices = tuple(f"A{i}" for i in range(1, k + 1))
    edges = {}
    for i in range(1, k + 1):
        for j in range(i + 1, k + 1):
            edges[f"R{i}_{j}"] = (f"A{i}", f"A{j}")
    return Hypergraph(vertices, edges)


def fd_fanout_query(k: int) -> Hypergraph:
    """Section 7.3's FD example: ``join_i R_i(A, B_i) join_i S_i(B_i, C)``."""
    if k < 1:
        raise QueryError(f"the FD example needs k >= 1, got {k}")
    vertices = ("A",) + tuple(f"B{i}" for i in range(1, k + 1)) + ("C",)
    edges: dict[str, tuple[str, ...]] = {}
    for i in range(1, k + 1):
        edges[f"R{i}"] = ("A", f"B{i}")
    for i in range(1, k + 1):
        edges[f"S{i}"] = (f"B{i}", "C")
    return Hypergraph(vertices, edges)


def paper_example_52() -> Hypergraph:
    """The worked example of Section 5.2: 6 attributes, 5 relations.

    The vertex-edge incidence matrix ``M`` of the paper, with edges in the
    order ``a, b, c, d, e`` — so Algorithm 3 anchors the root at ``e`` and
    the derived total order is ``1, 4, 2, 5, 3, 6`` (Figure 1).
    """
    return Hypergraph(
        ("1", "2", "3", "4", "5", "6"),
        {
            "a": ("1", "2", "4", "5"),
            "b": ("1", "3", "4", "6"),
            "c": ("1", "2", "3"),
            "d": ("2", "4", "6"),
            "e": ("3", "5", "6"),
        },
    )


def paper_figure2() -> Hypergraph:
    """The query of Figure 2: ``R1(A1,A2,A4,A5) join R2(A1,A3,A4,A6) join
    R3(A1,A2,A3) join R4(A2,A4,A6) join R5(A3,A5,A6)``."""
    return Hypergraph(
        ("A1", "A2", "A3", "A4", "A5", "A6"),
        {
            "R1": ("A1", "A2", "A4", "A5"),
            "R2": ("A1", "A3", "A4", "A6"),
            "R3": ("A1", "A2", "A3"),
            "R4": ("A2", "A4", "A6"),
            "R5": ("A3", "A5", "A6"),
        },
    )


def relaxed_lower_bound_query(n: int) -> Hypergraph:
    """Section 7.2's lower-bound query: singletons ``e_i = {A_i}`` plus the
    full edge ``e_{n+1} = {A_1..A_n}``."""
    if n < 1:
        raise QueryError(f"need n >= 1, got {n}")
    vertices = tuple(f"A{i}" for i in range(1, n + 1))
    edges: dict[str, tuple[str, ...]] = {
        f"E{i}": (f"A{i}",) for i in range(1, n + 1)
    }
    edges[f"E{n + 1}"] = vertices
    return Hypergraph(vertices, edges)


def beyond_lw_query() -> Hypergraph:
    """A Lemma 6.3 query: the LW triangle on ``U = {A,B,C}`` lifted by a
    shared attribute ``D`` (each edge gains ``D``).

    Check of the lemma's conditions with ``F = E``: every ``u in U`` lies
    in exactly ``|U| - 1 = 2`` edges; the only ``U``-relevant vertex ``D``
    lies in 3 >= 2 edges; no vertex is ``U``-troublesome (no edge contains
    all of ``U``).
    """
    return Hypergraph(
        ("A", "B", "C", "D"),
        {
            "R": ("A", "B", "D"),
            "S": ("B", "C", "D"),
            "T": ("A", "C", "D"),
        },
    )
