"""The paper's instance families, reproduced exactly.

Every lower-bound and tightness construction in the paper is an explicit
synthetic instance; this module rebuilds each one:

* :func:`triangle_hard_instance` — Example 2.2's ``I_N``;
* :func:`lw_hard_instance` — Lemma 6.1's "simple" relations;
* :func:`beyond_lw_instance` — the Lemma 6.3 lifting;
* :func:`grid_instance` — AGM-tight product instances;
* :func:`relaxed_lower_bound_instance` — Section 7.2's tight instance;
* :func:`fd_fanout_instance` — Section 7.3's FD example;
* :func:`cycle_hard_instance` — the Example 2.2 pattern generalized to
  k-cycles (hub value 0 with high fan-out), for the Section 7.1 benches.

Where the paper "ignores the integrality issue" (Lemma 6.1's domain size
``(N-1)/(n-1)``), we round and report the realized sizes; the benchmark
tables print both the requested and realized ``N``.
"""

from __future__ import annotations

from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.relation import Relation
from repro.workloads import queries


def triangle_hard_instance(n: int) -> JoinQuery:
    """Example 2.2: ``R = S = T = {(0, j)} cup {(j, 0)}, j = 1..N/2``.

    Properties (verified in tests):
    ``|R| = |S| = |T| = N``;  every pairwise join has ``N^2/4 + N/2``
    tuples; the triangle join is empty.  Any binary-join plan and AGM's
    join-project algorithm therefore do ``Omega(N^2)`` work, while the AGM
    bound is ``N^{3/2}`` and Algorithms 1 and 2 finish in ``O(N)``.
    """
    if n < 2 or n % 2:
        raise QueryError(f"Example 2.2 needs an even N >= 2, got {n}")
    half = n // 2
    pattern = [(0, j) for j in range(1, half + 1)] + [
        (j, 0) for j in range(1, half + 1)
    ]
    return JoinQuery(
        [
            Relation("R", ("A", "B"), pattern),
            Relation("S", ("B", "C"), pattern),
            Relation("T", ("A", "C"), pattern),
        ]
    )


def lw_hard_instance(n: int, size: int) -> JoinQuery:
    """Lemma 6.1: "simple" relations over ``[n] choose (n-1)``.

    Domain ``D = {0..M}`` with ``M = max(1, (N-1) // (n-1))``; relation
    ``R_i`` (on attributes ``A_j, j != i``) holds every tuple with **at
    most one non-zero** coordinate.  Realized size:
    ``|R_i| = 1 + (n-1) M ~ N``.  Any join-project plan needs
    ``Omega(N^2/n^2)`` on this family (Lemma 6.1) while Algorithm 2 runs in
    ``O(n^2 N)`` (Lemma 6.2).
    """
    if n < 3:
        raise QueryError(f"Lemma 6.1 instances need n >= 3, got {n}")
    if size < n:
        raise QueryError(f"need N >= n, got N={size}, n={n}")
    m = max(1, (size - 1) // (n - 1))
    hypergraph = queries.lw_query(n)
    relations = {}
    for eid, members in hypergraph.edges.items():
        attrs = tuple(
            a for a in hypergraph.vertices if a in members
        )
        arity = len(attrs)
        rows = [tuple([0] * arity)]
        for position in range(arity):
            for value in range(1, m + 1):
                row = [0] * arity
                row[position] = value
                rows.append(tuple(row))
        relations[eid] = Relation(eid, attrs, rows)
    return JoinQuery.from_hypergraph(hypergraph, relations)


def beyond_lw_instance(size: int, padding_value: int = -1) -> JoinQuery:
    """Lemma 6.3's construction on :func:`~repro.workloads.queries.beyond_lw_query`.

    The edges of ``F`` (here all three) carry Lemma 6.1-style simple
    relations on their ``U``-part, and the extra attribute ``D`` is pinned
    to the single constant ``padding_value``.  Binary plans still pay
    ``Omega(N^2/|U|^2)``; the fractional cover ``x_e = 1/2`` on ``F``
    bounds the output by ``N^{3/2}``.
    """
    base = lw_hard_instance(3, size)
    hypergraph = queries.beyond_lw_query()
    # Map the LW triangle's attributes A1,A2,A3 onto U = {A,B,C}.  The LW
    # relation R_i omits attribute A_i, so R3 (on A1,A2) lifts to the edge
    # {A,B,D}, R1 (on A2,A3) to {B,C,D}, and R2 (on A1,A3) to {A,C,D}.
    renames = {"A1": "A", "A2": "B", "A3": "C"}
    relations = {}
    for eid, target in (("R3", "R"), ("R1", "S"), ("R2", "T")):
        relation = base.relation(eid)
        source = relation.rename(
            {k: v for k, v in renames.items() if k in relation.attribute_set}
        )
        rows = [row + (padding_value,) for row in source.tuples]
        attrs = source.attributes + ("D",)
        relations[target] = Relation(target, attrs, rows)
    return JoinQuery.from_hypergraph(hypergraph, relations)


def grid_instance(hypergraph: Hypergraph, side: int) -> JoinQuery:
    """The AGM-tight product instance: every relation is the full grid
    ``[side]^{|e|}`` over its attributes.

    The join is ``[side]^n``; for a tight cover (e.g. the LW cover on LW
    queries) the AGM bound is met with equality — benchmark E5.
    """
    if side < 1:
        raise QueryError(f"side must be >= 1, got {side}")
    import itertools

    relations = {}
    for eid, members in hypergraph.edges.items():
        attrs = tuple(a for a in hypergraph.vertices if a in members)
        rows = itertools.product(range(side), repeat=len(attrs))
        relations[eid] = Relation(eid, attrs, rows)
    return JoinQuery.from_hypergraph(hypergraph, relations)


def relaxed_lower_bound_instance(n: int, size: int) -> JoinQuery:
    """Section 7.2's tight instance for the relaxed-join bound.

    ``R_{e_i} = [N]`` for each singleton edge and
    ``R_{e_{n+1}} = { (N+i, ..., N+i) : i in [N] }``.  For any ``r > 0``,
    ``q_r = R_{e_{n+1}} cup [N]^n``, i.e. ``|q_r| = N + N^n``, matching
    ``sum_{S in C*} LPOpt(S) = N + N^n`` exactly.
    """
    if size < 1:
        raise QueryError(f"size must be >= 1, got {size}")
    hypergraph = queries.relaxed_lower_bound_query(n)
    relations = {}
    for i in range(1, n + 1):
        relations[f"E{i}"] = Relation(
            f"E{i}", (f"A{i}",), [(v,) for v in range(1, size + 1)]
        )
    full_attrs = tuple(f"A{i}" for i in range(1, n + 1))
    relations[f"E{n + 1}"] = Relation(
        f"E{n + 1}",
        full_attrs,
        [tuple([size + i] * n) for i in range(1, size + 1)],
    )
    return JoinQuery.from_hypergraph(hypergraph, relations)


def fd_fanout_instance(k: int, size: int) -> tuple[JoinQuery, list]:
    """Section 7.3's FD example: ``R_i(A, B_i)``, ``S_i(B_i, C)``.

    ``R_i = {(a, a)}`` (so ``A -> B_i`` holds) and ``S_i = {(b, 0)}``.
    The full join is ``{(a, a, ..., a, 0)}`` (``N`` tuples); the half-join
    ``join_i S_i`` alone has ``N^k`` tuples, and the FD-unaware AGM bound
    is ``N^k`` versus ``N^2`` after FD expansion.

    Returns ``(query, fds)``.
    """
    from repro.core.fd import FunctionalDependency

    if k < 1 or size < 1:
        raise QueryError(f"need k >= 1 and N >= 1, got k={k}, N={size}")
    hypergraph = queries.fd_fanout_query(k)
    relations = {}
    for i in range(1, k + 1):
        relations[f"R{i}"] = Relation(
            f"R{i}", ("A", f"B{i}"), [(a, a) for a in range(1, size + 1)]
        )
        relations[f"S{i}"] = Relation(
            f"S{i}", (f"B{i}", "C"), [(b, 0) for b in range(1, size + 1)]
        )
    query = JoinQuery.from_hypergraph(hypergraph, relations)
    fds = [
        FunctionalDependency(f"R{i}", "A", f"B{i}") for i in range(1, k + 1)
    ]
    return query, fds


def cycle_hard_instance(k: int, size: int) -> JoinQuery:
    """Example 2.2's hub pattern on a k-cycle.

    Every relation is ``{(0, j)} cup {(j, 0)}``: all pairwise joins explode
    quadratically around the hub value 0, the full cycle join stays tiny.
    Used by benchmark E6 to separate the Cycle Lemma from binary plans.
    """
    if size < 2 or size % 2:
        raise QueryError(f"need an even N >= 2, got {size}")
    hypergraph = queries.cycle_query(k)
    half = size // 2
    pattern = [(0, j) for j in range(1, half + 1)] + [
        (j, 0) for j in range(1, half + 1)
    ]
    relations = {}
    for eid in hypergraph.edge_ids:
        attrs = tuple(
            sorted(
                hypergraph.edges[eid],
                key=hypergraph.vertices.index,
            )
        )
        relations[eid] = Relation(eid, attrs, pattern)
    return JoinQuery.from_hypergraph(hypergraph, relations)
