"""The package version, importable without pulling in the package.

Single source of truth: ``repro.__init__`` re-exports it, the CLI's
``--version`` prints it, and every trace / metrics export stamps it into
its header (so an artifact collected from CI or a long-lived server
names the engine build that produced it).  Lives in its own module so
the zero-dependency observability layer (:mod:`repro.observe`) can
import it without importing ``repro`` itself.
"""

__version__ = "1.1.0"
