"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures without also swallowing built-in errors.
The subclasses mirror the major subsystems: relational data, fractional
covers / linear programming, query structure, and functional dependencies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A relation was constructed or combined with an inconsistent schema.

    Raised for duplicate attribute names, tuples of the wrong arity,
    projections onto attributes that do not exist, and similar misuse of
    :class:`repro.relations.Relation`.
    """


class DatabaseError(ReproError):
    """A database catalog operation failed (unknown or duplicate relation)."""


class QueryError(ReproError):
    """A join query is malformed.

    Examples: a hyperedge refers to a relation of mismatched arity, a query
    has no relations, or an algorithm restricted to a query class (e.g. LW
    instances, arity-2 queries) was handed a query outside that class.
    """


class PlanError(QueryError):
    """The planner rejected a request the executor would silently ignore.

    Raised at *plan time* — before any index is built and before any
    generator is consumed — when the caller combines options that cannot
    run together: an attribute order for an algorithm that derives its
    own, a backend an algorithm cannot execute on, or an invalid shard /
    batch configuration.  Subclasses :class:`QueryError` so existing
    ``except QueryError`` handlers keep working.
    """


def require_positive_int(value: object, what: str, extra: str = "") -> int:
    """Validate a strictly positive ``int`` (bools rejected) or raise
    :class:`PlanError`.

    The one guard behind every shard-count / batch-size / worker-count
    parameter, so the layers cannot drift apart.  ``extra`` names other
    accepted spellings for the message (e.g. ``" or 'auto'"``).
    """
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise PlanError(
            f"{what} must be a positive int{extra}, got {value!r}"
        )
    return value


class LangError(ReproError):
    """Base class for query-language front-end errors.

    Deliberately *not* a :class:`QueryError`: text-level failures
    (bad syntax, unknown relation names) are a different kind of wrong
    than a malformed :class:`~repro.core.query.JoinQuery`, and servers
    map the two to different typed payloads.  Instances carry the
    source text and a 1-based ``line`` / ``column`` (plus the token
    ``length``) so callers can render caret diagnostics.
    """

    kind = "language"

    def __init__(
        self,
        message: str,
        *,
        source: str = "",
        line: int = 1,
        column: int = 1,
        length: int = 1,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.source = source
        self.line = line
        self.column = column
        self.length = max(1, length)

    def caret_diagnostic(self) -> str:
        """The error with the offending source line and a caret under
        the offending token::

            parse error at line 1, column 8: expected FROM
              select from R
                     ^
        """
        header = (
            f"{self.kind} error at line {self.line}, "
            f"column {self.column}: {self.message}"
        )
        lines = self.source.splitlines()
        if not self.source or self.line > len(lines):
            return header
        source_line = lines[self.line - 1]
        marker = " " * (self.column - 1) + "^" * min(
            self.length, max(1, len(source_line) - self.column + 1)
        )
        return f"{header}\n  {source_line}\n  {marker}"


class ParseError(LangError):
    """The query text is not a sentence of the grammar (bad token,
    unexpected keyword, unterminated string, missing clause)."""

    kind = "parse"


class CompileError(LangError):
    """The query text parsed but cannot be compiled against the catalog
    (unknown relation or attribute, aggregate misuse, bad sample size).
    """

    kind = "compile"


class DistributedError(ReproError):
    """A distributed execution could not complete.

    Raised by the shard dispatcher when a shard exhausts its retry
    budget, when every worker channel has died with shards still
    pending, or when a worker reports a permanent (typed) failure.
    Transient worker deaths below the retry budget are handled silently
    — the shard is re-dispatched and the stream proceeds.
    """


class CoverError(ReproError):
    """A fractional edge cover is invalid for its hypergraph.

    Raised when a supplied cover vector has negative entries, misses a
    vertex constraint, or refers to unknown edges.
    """


class LinearProgramError(ReproError):
    """The exact simplex solver failed (infeasible or unbounded program)."""


class InfeasibleProgramError(LinearProgramError):
    """The linear program has an empty feasible region."""


class UnboundedProgramError(LinearProgramError):
    """The linear program's objective is unbounded below."""


class FunctionalDependencyError(ReproError):
    """The data violates a declared functional dependency.

    Raised while building the value map of an FD ``e.u -> e.v`` when the
    relation ``R_e`` holds two tuples that agree on ``u`` but differ on ``v``.
    """
