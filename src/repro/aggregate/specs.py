"""Aggregate specifications: what to compute from a join, declaratively.

An :class:`AggregateSpec` describes *what* the caller wants (a count, a
sum over one attribute, a grouped bundle of both) independently of *how*
the engine produces it — folded into the level loops of a worst-case
optimal search (:mod:`repro.aggregate.fold`), replayed over a
materialized row stream, or merged from per-shard partial states in the
parallel driver.  That split is the whole design: every execution path
reduces to the same four-operation protocol, so the oracle tests can
assert exact equality between a brute-force fold and the pruned one.

The protocol (all methods pure; specs and states are picklable so they
can ship to shard workers and come back):

``needs``
    Attribute names whose *values* the spec reads.  The fold layer uses
    this to compute the pruning cutoff — levels below the deepest needed
    attribute contribute only their completion **count**, never their
    values, so whole subtrees collapse to one multiplication.
``multiplicity_sensitive``
    ``False`` when only the *existence* of completions matters (min/max:
    a prefix with 5 completions contributes its values once).  ``True``
    when the number of completions scales the contribution (count, sum,
    grouped counts).
``start() / add(state, values, multiplicity) / merge(a, b) / finish(state)``
    The fold calls ``add`` once per surviving prefix at the cutoff depth
    with ``values`` aligned to ``needs`` and ``multiplicity`` equal to
    the number of join rows completing that prefix; ``merge`` combines
    partial states (shard workers return states, the parent merges);
    ``finish`` turns the final state into the user-facing result.

Empty-join conventions follow Python, not SQL: ``count() == 0``,
``sum() == 0`` (like ``sum([])``), ``min()/max() is None``, group-by is
an empty dict, ``sample`` is an empty list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping

from repro.errors import QueryError

__all__ = [
    "AggregateSpec",
    "Avg",
    "Count",
    "CountDistinct",
    "GroupBy",
    "Max",
    "Min",
    "Sum",
    "as_spec",
]


@dataclass(frozen=True)
class AggregateSpec:
    """Base class fixing the fold protocol (see module docstring)."""

    @property
    def needs(self) -> tuple[str, ...]:
        """Attribute names whose values the spec reads (may be empty)."""
        return ()

    @property
    def multiplicity_sensitive(self) -> bool:
        """Whether the number of completions scales the contribution."""
        return True

    def start(self):
        raise NotImplementedError

    def add(self, state, values: tuple, multiplicity: int):
        raise NotImplementedError

    def merge(self, left, right):
        raise NotImplementedError

    def finish(self, state):
        return state


@dataclass(frozen=True)
class Count(AggregateSpec):
    """``COUNT(*)``: the number of rows in the join result."""

    def start(self) -> int:
        return 0

    def add(self, state: int, values: tuple, multiplicity: int) -> int:
        return state + multiplicity

    def merge(self, left: int, right: int) -> int:
        return left + right


@dataclass(frozen=True)
class Sum(AggregateSpec):
    """``SUM(attribute)`` over the join rows (0 on an empty join)."""

    attribute: str

    @property
    def needs(self) -> tuple[str, ...]:
        return (self.attribute,)

    def start(self) -> int:
        return 0

    def add(self, state, values: tuple, multiplicity: int):
        return state + values[0] * multiplicity

    def merge(self, left, right):
        return left + right


@dataclass(frozen=True)
class Avg(AggregateSpec):
    """``AVG(attribute)`` over the join rows (None on an empty join).

    The state is a ``(sum, count)`` pair — both associative — so the
    mean folds exactly under sharded merges: workers never compute a
    partial mean, only partial sums and counts.
    """

    attribute: str

    @property
    def needs(self) -> tuple[str, ...]:
        return (self.attribute,)

    def start(self) -> tuple:
        return (0, 0)

    def add(self, state: tuple, values: tuple, multiplicity: int) -> tuple:
        return (state[0] + values[0] * multiplicity, state[1] + multiplicity)

    def merge(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], left[1] + right[1])

    def finish(self, state: tuple):
        total, count = state
        return total / count if count else None


@dataclass(frozen=True)
class CountDistinct(AggregateSpec):
    """``COUNT(DISTINCT attribute)`` over the join rows (0 when empty).

    Multiplicity-insensitive like :class:`Min`/:class:`Max`: a prefix
    with 5 completions contributes its value once, so the fold's
    factorized pruning below the attribute's level stays exact.  The
    state is the set of seen values (mutated in place, like
    :class:`GroupBy`'s dict); ``merge`` unions shard states.
    """

    attribute: str

    @property
    def needs(self) -> tuple[str, ...]:
        return (self.attribute,)

    @property
    def multiplicity_sensitive(self) -> bool:
        return False

    def start(self) -> set:
        return set()

    def add(self, state: set, values: tuple, multiplicity: int) -> set:
        state.add(values[0])
        return state

    def merge(self, left: set, right: set) -> set:
        return left | right

    def finish(self, state: set) -> int:
        return len(state)


@dataclass(frozen=True)
class Min(AggregateSpec):
    """``MIN(attribute)`` over the join rows (None on an empty join)."""

    attribute: str

    @property
    def needs(self) -> tuple[str, ...]:
        return (self.attribute,)

    @property
    def multiplicity_sensitive(self) -> bool:
        return False

    def start(self):
        return None

    def add(self, state, values: tuple, multiplicity: int):
        value = values[0]
        return value if state is None or value < state else state

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left if left < right else right


@dataclass(frozen=True)
class Max(AggregateSpec):
    """``MAX(attribute)`` over the join rows (None on an empty join)."""

    attribute: str

    @property
    def needs(self) -> tuple[str, ...]:
        return (self.attribute,)

    @property
    def multiplicity_sensitive(self) -> bool:
        return False

    def start(self):
        return None

    def add(self, state, values: tuple, multiplicity: int):
        value = values[0]
        return value if state is None or value > state else state

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left if left > right else right


@dataclass(frozen=True)
class GroupBy(AggregateSpec):
    """Grouped aggregates: one inner-spec bundle per distinct key tuple.

    The state is ``{key tuple: (inner state, ...)}``; ``finish`` maps it
    to ``{key tuple: {name: value}}``.  Keys are always tuples, even for
    a single grouping attribute.
    """

    keys: tuple[str, ...]
    aggregates: tuple[tuple[str, AggregateSpec], ...] = field(
        default_factory=tuple
    )

    @cached_property
    def needs(self) -> tuple[str, ...]:
        needed = list(self.keys)
        for _name, spec in self.aggregates:
            for attribute in spec.needs:
                if attribute not in needed:
                    needed.append(attribute)
        return tuple(needed)

    @property
    def multiplicity_sensitive(self) -> bool:
        return any(
            spec.multiplicity_sensitive for _name, spec in self.aggregates
        )

    @cached_property
    def _inner_positions(self) -> tuple[tuple[int, ...], ...]:
        # Positions of each inner spec's needs inside this spec's values.
        order = {attribute: i for i, attribute in enumerate(self.needs)}
        return tuple(
            tuple(order[a] for a in spec.needs)
            for _name, spec in self.aggregates
        )

    def start(self) -> dict:
        return {}

    def add(self, state: dict, values: tuple, multiplicity: int) -> dict:
        key = values[: len(self.keys)]
        states = state.get(key)
        if states is None:
            states = tuple(spec.start() for _n, spec in self.aggregates)
        positions = self._inner_positions
        state[key] = tuple(
            spec.add(
                inner,
                tuple(values[p] for p in positions[i]),
                multiplicity,
            )
            for i, ((_n, spec), inner) in enumerate(
                zip(self.aggregates, states)
            )
        )
        return state

    def merge(self, left: dict, right: dict) -> dict:
        merged = dict(left)
        for key, states in right.items():
            mine = merged.get(key)
            if mine is None:
                merged[key] = states
            else:
                merged[key] = tuple(
                    spec.merge(a, b)
                    for (_n, spec), a, b in zip(
                        self.aggregates, mine, states
                    )
                )
        return merged

    def finish(self, state: dict) -> dict:
        return {
            key: {
                name: spec.finish(inner)
                for (name, spec), inner in zip(self.aggregates, states)
            }
            for key, states in sorted(state.items())
        }


#: Shorthand names accepted by :func:`as_spec` for single-attribute
#: aggregates: ``("sum", "A")`` and friends.
_SHORTHAND = {
    "sum": Sum,
    "min": Min,
    "max": Max,
    "avg": Avg,
    "count_distinct": CountDistinct,
}


def as_spec(value) -> AggregateSpec:
    """Normalize a user-supplied aggregate description into a spec.

    Accepts a spec instance, the string ``"count"``, or a
    ``(kind, attribute)`` pair with kind in
    ``sum``/``min``/``max``/``avg``/``count_distinct``.
    """
    if isinstance(value, AggregateSpec):
        return value
    if value == "count":
        return Count()
    if (
        isinstance(value, (tuple, list))
        and len(value) == 2
        and value[0] in _SHORTHAND
    ):
        return _SHORTHAND[value[0]](value[1])
    raise QueryError(
        f"unknown aggregate {value!r}; pass a spec (Count(), Sum('A'), "
        "Min('A'), Max('A'), Avg('A'), CountDistinct('A')), the string "
        "'count', or a ('sum'|'min'|'max'|'avg'|'count_distinct', "
        "attribute) pair"
    )


def grouped(keys, aggregates: Mapping[str, object]) -> GroupBy:
    """Build a :class:`GroupBy` from a keys sequence and name→spec map."""
    return GroupBy(
        tuple(keys),
        tuple((name, as_spec(value)) for name, value in aggregates.items()),
    )
