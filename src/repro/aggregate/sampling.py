"""Uniform sampling of join results by AGM-weighted descent.

Draws uniform random rows of ``join_e R_e`` *without enumerating it*,
following the rejection scheme of Capelli–Irwin–Salvati ("A Simple
Algorithm for Worst-Case Optimal Join and Sampling", PAPERS.md), which
runs the same level descent as Generic Join but replaces the loop over
candidates with a single weighted coin:

Fix an optimal fractional edge cover ``x`` (the AGM machinery of
Ngo–Porat–Ré–Rudra already computes it).  Give every partial assignment
(search node) the weight::

    w(prefix) = prod_e count_e(node_e, remaining_e) ** x_e

— each relation's count of distinct completions of its part of the
prefix, raised to its cover weight.  ``w(root)`` is exactly the AGM
bound and ``w(full row) = 1``.  The query decomposition lemma (Hölder,
the same inequality that powers the AGM bound) gives, at every level::

    sum_v w(prefix + v)  <=  w(prefix)

so drawing ``r`` uniform in ``[0, w(prefix))`` and walking the
candidates subtracting their masses either lands inside some child —
descend — or falls into the slack — **reject** the trial.  A trial that
survives all levels reaches a full join row with probability exactly
``w(row)/w(root) = 1/AGM``, independent of the row: accepted rows are
uniform.  The expected number of trials per sample is ``AGM/|J|``.

Practicalities:

* ``sample(k)`` draws **without replacement** (accepted duplicates are
  rejected and retried), returning ``min(k, |J|)`` rows.
* Residual filters participate as dead mass: a trial whose chosen value
  fails its level's filter is rejected, so surviving rows stay uniform
  over the *filtered* join.
* When trials stall (tiny or empty joins — ``|J| << AGM``), the sampler
  falls back once to exact enumeration over the same indexes and draws
  the sample directly; the fallback costs one worst-case-optimal join,
  which the stall itself proves is cheap relative to further rejection.
* The sampler is **algorithm independent**: it owns its descent, so the
  query layer can surface it unchanged no matter which enumeration
  algorithm the plan would have picked, over any index backend that
  implements ``items``/``child``/``count``/``fanout_hint``.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping, Sequence

from repro.core.filters import per_position_filters
from repro.core.query import JoinQuery
from repro.hypergraph.agm import best_agm_bound
from repro.relations.database import (
    DEFAULT_BACKEND,
    INDEX_BACKENDS,
    Database,
    build_index,
)
from repro.relations.relation import Row, Value

__all__ = ["JoinSampler", "reservoir_sample", "sample_query"]

#: Consecutive rejected (or duplicate) trials before the sampler gives
#: up on rejection and enumerates exactly.  High enough that joins with
#: acceptance rate >= ~2% essentially never fall back, low enough that
#: empty joins stop quickly.
STALL_LIMIT = 512


class JoinSampler:
    """Uniform join-row sampler over per-relation trie-style indexes.

    Parameters mirror the enumeration executors: an optional catalog
    for cached indexes, a backend kind (anything unknown — including
    per-relation mappings and ``None`` — falls back to the default
    backend, whose counts are O(1)), and residual filters.
    """

    def __init__(
        self,
        query: JoinQuery,
        *,
        backend: str | None = None,
        database: Database | None = None,
        filters: Mapping[str, Callable[[Value], bool]] | None = None,
    ) -> None:
        self.query = query
        order = query.attributes
        self.order = order
        kind = backend if backend in INDEX_BACKENDS else DEFAULT_BACKEND
        self.backend = kind
        rank = {a: i for i, a in enumerate(order)}
        self._indexes = []
        self._arity: list[int] = []
        for eid in query.edge_ids:
            relation = query.relation(eid)
            index_order = tuple(
                sorted(relation.attributes, key=rank.__getitem__)
            )
            if database is not None and database.is_catalogued(relation):
                index = database.index(eid, index_order, kind)
            else:
                index = build_index(relation, index_order, kind)
            self._indexes.append(index)
            self._arity.append(len(index_order))
        self._participants: list[list[int]] = [
            [
                i
                for i, eid in enumerate(query.edge_ids)
                if attribute in query.relation(eid).attribute_set
            ]
            for attribute in order
        ]
        self._filters = per_position_filters(filters, order, order)
        cover, self.agm = best_agm_bound(query.hypergraph, query.sizes())
        self._weights = [
            float(cover.get(eid)) for eid in query.edge_ids
        ]

    # -- one rejection trial -------------------------------------------------

    def _trial(self, rng: random.Random) -> Row | None:
        """One AGM-weighted descent; a full row or None (rejected)."""
        indexes = self._indexes
        weights = self._weights
        nodes = [index.root for index in indexes]
        remaining = list(self._arity)
        weight = 1.0
        for i, index in enumerate(indexes):
            count = index.count(nodes[i], remaining[i])
            if count == 0:
                return None  # an empty relation: the join is empty
            weight *= count ** weights[i]
        prefix: list[Value] = []
        for depth in range(len(self.order)):
            level = self._participants[depth]
            # Non-participants keep their node; their factors are shared
            # by every candidate's mass at this level.
            shared = 1.0
            for i in range(len(indexes)):
                if i not in level:
                    shared *= (
                        indexes[i].count(nodes[i], remaining[i])
                        ** weights[i]
                    )
            smallest = min(
                level, key=lambda i: indexes[i].fanout_hint(nodes[i])
            )
            base = indexes[smallest]
            draw = rng.random() * weight
            chosen = None
            for value, base_child in base.items(nodes[smallest]):
                mass = shared
                children = {}
                dead = False
                for i in level:
                    child = (
                        base_child
                        if i == smallest
                        else indexes[i].child(nodes[i], value)
                    )
                    if child is None:
                        dead = True
                        break
                    count = indexes[i].count(child, remaining[i] - 1)
                    if count == 0:
                        dead = True
                        break
                    children[i] = child
                    mass *= count ** weights[i]
                if dead:
                    continue
                draw -= mass
                if draw < 0.0:
                    chosen = (value, children, mass)
                    break
            if chosen is None:
                return None  # the draw fell into the Hölder slack
            value, children, weight = chosen
            level_filter = self._filters[depth]
            if level_filter is not None and not level_filter(value):
                return None  # dead mass: keeps filtered rows uniform
            for i, child in children.items():
                nodes[i] = child
                remaining[i] -= 1
            prefix.append(value)
        return tuple(prefix)

    # -- exact enumeration fallback ------------------------------------------

    def _enumerate(self) -> list[Row]:
        """All join rows via plain smallest-first descent (the fallback)."""
        indexes = self._indexes
        participants = self._participants
        filters = self._filters
        total = len(self.order)
        rows: list[Row] = []

        def descend(depth: int, nodes: list, prefix: list) -> None:
            if depth == total:
                rows.append(tuple(prefix))
                return
            level = participants[depth]
            smallest = min(
                level, key=lambda i: indexes[i].fanout_hint(nodes[i])
            )
            base = indexes[smallest]
            others = [i for i in level if i != smallest]
            level_filter = filters[depth]
            for value, child in base.items(nodes[smallest]):
                if level_filter is not None and not level_filter(value):
                    continue
                advanced = None
                ok = True
                for i in others:
                    nxt = indexes[i].child(nodes[i], value)
                    if nxt is None:
                        ok = False
                        break
                    if advanced is None:
                        advanced = list(nodes)
                    advanced[i] = nxt
                if not ok:
                    continue
                if advanced is None:
                    advanced = list(nodes)
                advanced[smallest] = child
                prefix.append(value)
                descend(depth + 1, advanced, prefix)
                prefix.pop()

        descend(0, [index.root for index in indexes], [])
        return rows

    # -- public surface --------------------------------------------------------

    def sample(self, k: int, rng: random.Random) -> list[Row]:
        """``min(k, |J|)`` distinct uniform rows, in acceptance order."""
        if k <= 0:
            return []
        found: list[Row] = []
        seen: set[Row] = set()
        stall = 0
        while len(found) < k:
            row = self._trial(rng)
            if row is not None and row not in seen:
                seen.add(row)
                found.append(row)
                stall = 0
                continue
            stall += 1
            if stall >= STALL_LIMIT:
                # Exact fallback: enumerate once, draw directly.  The
                # draw ignores rows found so far — rng.sample is already
                # uniform without replacement over the whole result.
                rows = sorted(set(self._enumerate()))
                if len(rows) <= k:
                    return rows
                return rng.sample(rows, k)
        return found


def sample_query(
    query: JoinQuery,
    k: int,
    seed: int | None = None,
    *,
    backend: str | None = None,
    database: Database | None = None,
    filters: Mapping[str, Callable[[Value], bool]] | None = None,
) -> list[Row]:
    """Draw ``min(k, |J|)`` uniform join rows (query attribute order).

    Deterministic for a fixed ``seed`` (trials consume the
    ``random.Random(seed)`` stream in a fixed order).
    """
    sampler = JoinSampler(
        query, backend=backend, database=database, filters=filters
    )
    return sampler.sample(k, random.Random(seed))


def reservoir_sample(rows, k: int, seed: int | None = None) -> list:
    """``min(k, n)`` uniform rows from any finite stream (Algorithm R).

    The query layer's fallback when AGM-weighted descent does not apply
    (projected/deduplicated output): one pass, O(k) memory, exact
    uniformity over whatever the stream yields, deterministic for a
    fixed ``seed``.
    """
    if k <= 0:
        return []
    rng = random.Random(seed)
    reservoir: list = []
    for i, row in enumerate(rows):
        if i < k:
            reservoir.append(row)
            continue
        j = rng.randrange(i + 1)
        if j < k:
            reservoir[j] = row
    return reservoir
