"""Aggregation and uniform sampling without enumeration.

The "answers without enumeration" layer: aggregate *specs*
(:mod:`repro.aggregate.specs`) describe what to compute, the *fold*
(:mod:`repro.aggregate.fold`) pushes them into the level loops of the
worst-case optimal search with factorized subtree pruning, and the
*sampler* (:mod:`repro.aggregate.sampling`) draws uniform join rows by
AGM-weighted rejection.  The query layer
(:meth:`repro.query.builder.QueryBuilder.count` and friends) is the
user-facing surface; these modules are the mechanism.
"""

from repro.aggregate.fold import Folder, fold_executor, fold_rows, fold_state
from repro.aggregate.sampling import (
    JoinSampler,
    reservoir_sample,
    sample_query,
)
from repro.aggregate.specs import (
    AggregateSpec,
    Avg,
    Count,
    CountDistinct,
    GroupBy,
    Max,
    Min,
    Sum,
    as_spec,
    grouped,
)

__all__ = [
    "AggregateSpec",
    "Avg",
    "Count",
    "CountDistinct",
    "Folder",
    "GroupBy",
    "JoinSampler",
    "Max",
    "Min",
    "Sum",
    "as_spec",
    "fold_executor",
    "fold_rows",
    "fold_state",
    "grouped",
    "reservoir_sample",
    "sample_query",
]
