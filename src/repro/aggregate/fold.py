"""Fold aggregates into the level loops of a worst-case optimal search.

The enumeration executors (:class:`~repro.core.generic_join.GenericJoin`,
:class:`~repro.core.leapfrog.LeapfrogTriejoin`) descend one attribute
per level, intersecting candidate values across the participating
relations.  To *count* instead of enumerate, the same descent runs with
two changes:

1. **No rows.**  Nothing is appended, permuted, or yielded; a
   :class:`Folder` accumulates the aggregate state in place, so each
   surviving prefix costs one ``add`` call instead of a tuple
   construction plus a yield chain through ``depth`` generator frames.
2. **Subtree pruning.**  At the first depth where every remaining level
   has exactly one participating relation and no residual filter, the
   number of completions *factorizes*: each remaining attribute is
   constrained by one relation only, so completions are the cross
   product of each participant's remaining distinct paths —
   ``prod_i count_i(node_i, remaining levels of i)``.  The whole subtree
   collapses to one multiplication per participant (``count`` is O(1)
   on the trie and compact backends: precomputed subtree tallies and
   CSR offset projection respectively).  Correctness: the remaining
   attribute sets of distinct participants are disjoint, so the
   completions are exactly the cross product — no intersection is
   skipped.
3. **Leaf counting.**  When the deepest level cannot be pruned (it has
   several participants — a triangle's last attribute — or a residual
   filter) but its *value* is not one the spec reads, the descent still
   need not recurse per value: it counts the surviving intersection in
   a tight loop and makes **one** ``add`` with that count as the
   multiplicity.  Every completion below the parent shares the same
   needed-values tuple, so one multiplicity-weighted ``add`` is exactly
   equivalent to the per-value adds it replaces — this is what makes
   ``count()`` on a dense triangle measurably cheaper than enumeration
   even though the probe sequence is identical.

Pruning never starts above the *cutoff*: the deepest level whose value
the aggregate spec reads (``1 + max rank of spec.needs``).  A ``count()``
has cutoff 0 and prunes as early as the query shape allows; ``sum("C")``
with C at rank 2 keeps enumerating through rank 2, then prunes below.

The descent binds to an executor through the same five attributes both
enumeration executors already expose (``_indexes``, ``_participants``,
``_filters``, ``order``, and the backend node protocol ``items`` /
``child`` / ``count`` / ``fanout_hint``), which is why one
implementation serves GenericJoin over any backend *and* Leapfrog over
its sorted/compact cursor layouts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.aggregate.specs import AggregateSpec
from repro.errors import QueryError

__all__ = ["Folder", "fold_executor", "fold_rows", "fold_state"]


class Folder:
    """Binds an :class:`AggregateSpec` to an execution attribute order.

    ``add(prefix, multiplicity)`` receives the search's prefix list in
    *execution* order and the number of join rows completing it; the
    folder extracts the spec's needed values by position and advances
    the state.  ``cutoff`` is the shallowest depth at which the spec has
    seen every value it needs — the fold may prune below it.
    """

    __slots__ = ("spec", "order", "cutoff", "state", "_positions")

    def __init__(self, spec: AggregateSpec, order: Sequence[str]) -> None:
        order = tuple(order)
        missing = [a for a in spec.needs if a not in order]
        if missing:
            raise QueryError(
                f"aggregate needs attributes {missing!r} absent from the "
                f"execution order {order!r}"
            )
        self.spec = spec
        self.order = order
        self._positions = tuple(order.index(a) for a in spec.needs)
        self.cutoff = 1 + max(self._positions) if self._positions else 0
        self.state = spec.start()

    def add(self, prefix: Sequence[object], multiplicity: int) -> None:
        values = tuple(prefix[p] for p in self._positions)
        self.state = self.spec.add(self.state, values, multiplicity)

    def result(self):
        return self.spec.finish(self.state)


def _prune_depth(participants, filters, cutoff: int, total: int) -> int:
    """Shallowest depth from which every level is prunable.

    A level is prunable when exactly one relation participates and no
    residual filter guards it; the returned depth is never above the
    folder's cutoff (the spec still needs those values).
    """
    depth = total
    while (
        depth > cutoff
        and len(participants[depth - 1]) == 1
        and filters[depth - 1] is None
    ):
        depth -= 1
    return depth


def fold_executor(executor, folder: Folder) -> Folder:
    """Run the folding descent over an executor's indexes.

    The executor must expose ``order``, ``_indexes``, ``_participants``,
    and ``_filters`` (GenericJoin and LeapfrogTriejoin both do).  The
    folder's order must match the executor's.
    """
    if folder.order != tuple(executor.order):
        raise QueryError(
            f"folder order {folder.order!r} does not match the "
            f"executor's attribute order {tuple(executor.order)!r}"
        )
    indexes = executor._indexes
    participants = executor._participants
    filters = executor._filters
    total = len(folder.order)
    prune = _prune_depth(participants, filters, folder.cutoff, total)
    # Leaf counting fires when the descent reaches the deepest level in
    # full (prune == total) yet the spec never reads that level's value:
    # all completions under one parent share the needed-values tuple, so
    # the whole intersection folds into one multiplicity-weighted add.
    countable_leaf = prune == total and total - 1 >= folder.cutoff
    # Remaining-level tally per relation at the prune frontier: relation
    # i contributes count(node_i, tail[i]) distinct completions.
    tally: dict[int, int] = {}
    for depth in range(prune, total):
        position = participants[depth][0]
        tally[position] = tally.get(position, 0) + 1
    tail = tuple(tally.items())

    def descend(depth: int, nodes: list, prefix: list) -> None:
        if depth == prune:
            if prune == total:
                folder.add(prefix, 1)
                return
            multiplicity = 1
            for position, levels in tail:
                multiplicity *= indexes[position].count(
                    nodes[position], levels
                )
                if not multiplicity:
                    return
            folder.add(prefix, multiplicity)
            return
        level = participants[depth]
        if not level:
            raise QueryError(
                f"attribute {folder.order[depth]!r} is in no relation"
            )
        smallest = min(
            level, key=lambda i: indexes[i].fanout_hint(nodes[i])
        )
        base = indexes[smallest]
        others = [i for i in level if i != smallest]
        level_filter = filters[depth]
        if countable_leaf and depth == total - 1:
            multiplicity = 0
            for value, _child in base.items(nodes[smallest]):
                if level_filter is not None and not level_filter(value):
                    continue
                for i in others:
                    if indexes[i].child(nodes[i], value) is None:
                        break
                else:
                    multiplicity += 1
            if multiplicity:
                folder.add(prefix, multiplicity)
            return
        for value, child in base.items(nodes[smallest]):
            if level_filter is not None and not level_filter(value):
                continue
            advanced = None
            ok = True
            for i in others:
                nxt = indexes[i].child(nodes[i], value)
                if nxt is None:
                    ok = False
                    break
                if advanced is None:
                    advanced = list(nodes)
                advanced[i] = nxt
            if not ok:
                continue
            if advanced is None:
                advanced = list(nodes)
            advanced[smallest] = child
            prefix.append(value)
            descend(depth + 1, advanced, prefix)
            prefix.pop()

    descend(0, [index.root for index in indexes], [])
    return folder


def fold_state(
    rows: Iterable[Sequence[object]],
    spec: AggregateSpec,
    attributes: Sequence[str],
):
    """Fold a materialized row stream; returns the raw (picklable) state.

    The brute-force twin of :func:`fold_executor`: every row counts with
    multiplicity 1.  Shard workers use this (or the executor fold) and
    ship the state back for the parent to merge.
    """
    folder = Folder(spec, attributes)
    for row in rows:
        folder.add(row, 1)
    return folder.state


def fold_rows(
    rows: Iterable[Sequence[object]],
    spec: AggregateSpec,
    attributes: Sequence[str],
):
    """Fold a materialized row stream and finish it to the user value."""
    return spec.finish(fold_state(rows, spec, attributes))
