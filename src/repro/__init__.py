"""repro: worst-case optimal join algorithms (Ngo-Porat-Re-Rudra, PODS'12).

A complete reproduction of "Worst-case Optimal Join Algorithms": the AGM
fractional-cover machinery, Algorithm 1 (Loomis-Whitney instances),
Algorithm 2 (all join queries), the Section 6 lower-bound instance
families, and every Section 7 extension (arity-2 queries, relaxed joins,
full conjunctive queries, functional dependencies), plus the classical
baselines the paper compares against and two successor WCOJ algorithms
(Generic Join, Leapfrog Triejoin) as cross-checking extensions.

Quickstart::

    from repro import Q, Relation, execute, explain, output_bound

    r = Relation("R", ("A", "B"), [(0, 1), (1, 2)])
    s = Relation("S", ("B", "C"), [(1, 5), (2, 6)])
    t = Relation("T", ("A", "C"), [(0, 5), (1, 6)])
    stream = execute([r, s, t])     # worst-case optimal triangle join
    for row in stream:
        print(row)                  # streamed, no materialization
    print(stream.relation("J"))     # ... or materialized
    print(stream.count())           # ... or folded, no enumeration
    print(output_bound([r, s, t]))  # the AGM bound 2^(3/2)
    print(explain([r, s, t]).describe())  # the engine's join plan

    # Selections and projections, pushed into the plan:
    print(Q(r, s, t).where(A=0).select("C").run())

    # Aggregates fold into the search (no enumeration), and sample()
    # draws uniform rows by AGM-weighted rejection:
    print(Q(r, s, t).count())
    print(Q(r, s, t).group_by("A").count())
    print(Q(r, s, t).sample(1, seed=7))
"""

from repro.aggregate import (
    Avg,
    Count,
    CountDistinct,
    GroupBy,
    Max,
    Min,
    Sum,
)
from repro.api import (
    ALGORITHMS,
    aiter_join,
    count_join,
    execute,
    explain,
    iter_join,
    join,
    join_batched,
    output_bound,
    sample_join,
    shard_join,
)
from repro.distributed import (
    DispatchScheduler,
    LocalPoolScheduler,
    LoopbackTransport,
    Scheduler,
    ShardWorker,
    SocketTransport,
    WorkerServer,
)
from repro.core import (
    ArityTwoJoin,
    Atom,
    ConjunctiveQuery,
    Const,
    FunctionalDependency,
    GenericJoin,
    JoinQuery,
    LWJoin,
    LeapfrogTriejoin,
    NPRRJoin,
    QPTree,
    RelaxedJoin,
    Var,
    arity_two_join,
    fd_aware_bound,
    fd_aware_join,
    generic_join,
    leapfrog_join,
    lw_join,
    nprr_join,
    relaxed_join,
    triangle_join,
)
from repro.engine import (
    IndexBackend,
    JoinPlan,
    plan_attribute_order,
    plan_join,
)
from repro.errors import (
    CompileError,
    CoverError,
    DatabaseError,
    DistributedError,
    FunctionalDependencyError,
    LangError,
    LinearProgramError,
    ParseError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.feedback import (
    ExecutionTelemetry,
    FeedbackConfig,
    ObservedLevel,
    ShardObservation,
)
from repro.observe import (
    MetricsRegistry,
    Span,
    SpanContext,
    Tracer,
)
from repro.hypergraph import (
    FractionalCover,
    Hypergraph,
    agm_bound,
    best_agm_bound,
    lw_hypergraph,
    optimal_fractional_cover,
    tighten_cover,
    verify_bt,
    verify_lw,
)
from repro.lang import (
    CompiledQuery,
    QueryResult,
    compile_query,
    normalize,
    parse,
)
from repro.query import (
    ExecutionContext,
    GroupedQuery,
    PreparedQuery,
    Q,
    QueryBuilder,
    ResultStream,
    ShardSpec,
    StealPolicy,
)
from repro.server import (
    AdmissionController,
    AdmissionRejected,
    JoinServer,
    PreparedCache,
    ServerClient,
    ServerError,
)
from repro.relations import (
    Database,
    Relation,
    SortedArrayIndex,
    TrieIndex,
    WarmReport,
)
from repro.stats import (
    PlanStatistics,
    StatsConfig,
    StatsProvider,
)

# ExplainAnalysis imports the query layer, so it must come after it (it
# is deliberately not re-exported from repro.observe itself).
from repro.observe.explain import ExplainAnalysis
from repro.version import __version__

__all__ = [
    "ALGORITHMS",
    "AdmissionController",
    "AdmissionRejected",
    "ArityTwoJoin",
    "Atom",
    "Avg",
    "CompileError",
    "CompiledQuery",
    "ConjunctiveQuery",
    "Const",
    "Count",
    "CountDistinct",
    "CoverError",
    "Database",
    "DatabaseError",
    "DispatchScheduler",
    "DistributedError",
    "ExecutionContext",
    "ExecutionTelemetry",
    "ExplainAnalysis",
    "FeedbackConfig",
    "FractionalCover",
    "FunctionalDependency",
    "FunctionalDependencyError",
    "GenericJoin",
    "GroupBy",
    "GroupedQuery",
    "Hypergraph",
    "IndexBackend",
    "JoinPlan",
    "JoinQuery",
    "JoinServer",
    "LWJoin",
    "LangError",
    "LeapfrogTriejoin",
    "LinearProgramError",
    "LocalPoolScheduler",
    "LoopbackTransport",
    "Max",
    "MetricsRegistry",
    "Min",
    "NPRRJoin",
    "ObservedLevel",
    "ParseError",
    "PlanError",
    "PlanStatistics",
    "PreparedCache",
    "PreparedQuery",
    "Q",
    "QPTree",
    "QueryBuilder",
    "QueryError",
    "QueryResult",
    "Relation",
    "RelaxedJoin",
    "ReproError",
    "ResultStream",
    "Scheduler",
    "SchemaError",
    "ServerClient",
    "ServerError",
    "ShardObservation",
    "ShardSpec",
    "ShardWorker",
    "SocketTransport",
    "SortedArrayIndex",
    "Span",
    "SpanContext",
    "StatsConfig",
    "StatsProvider",
    "StealPolicy",
    "Sum",
    "Tracer",
    "TrieIndex",
    "Var",
    "WarmReport",
    "WorkerServer",
    "agm_bound",
    "aiter_join",
    "arity_two_join",
    "best_agm_bound",
    "compile_query",
    "count_join",
    "execute",
    "explain",
    "fd_aware_bound",
    "fd_aware_join",
    "generic_join",
    "iter_join",
    "join",
    "join_batched",
    "leapfrog_join",
    "lw_hypergraph",
    "lw_join",
    "normalize",
    "nprr_join",
    "optimal_fractional_cover",
    "output_bound",
    "parse",
    "plan_attribute_order",
    "plan_join",
    "relaxed_join",
    "sample_join",
    "shard_join",
    "tighten_cover",
    "triangle_join",
    "verify_bt",
    "verify_lw",
]
