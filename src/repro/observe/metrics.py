"""The metrics registry: counters, gauges, histograms — no new probes.

Every number here is *fed from instrumentation that already exists*:

* rows emitted and intersection probes come from the
  :class:`~repro.feedback.telemetry.TelemetryProbe` snapshots the
  feedback loop already records (:meth:`MetricsRegistry.record_run`);
* index-cache hits / misses / evictions and resident bytes by backend
  mirror ``Database.cache_info()`` (:meth:`MetricsRegistry.record_cache`
  — cumulative totals are *set*, not re-counted, so refreshing is
  idempotent);
* per-shard wall times and the imbalance ratio come from the parallel
  driver's existing shard timing (:meth:`MetricsRegistry.record_shards`);
* re-plan counts come from :class:`~repro.query.prepared.PreparedQuery`
  (:meth:`MetricsRegistry.record_replan`).

Exports: :meth:`MetricsRegistry.to_dict` / ``to_json`` (a header with
the package version and format tag, then every metric), and
:meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
format, written dependency-free (``# HELP`` / ``# TYPE`` comment pairs,
``name{label="v"} value`` samples, histograms as cumulative ``_bucket``
series plus ``_sum`` / ``_count``).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping

from repro.version import __version__

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Format tag stamped into every metrics export header.
METRICS_FORMAT = "repro-metrics/1"

#: Default histogram bucket upper bounds (seconds-flavored: shard wall
#: times are the only histogram the engine feeds out of the box).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.5,
    2.5,
    10.0,
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically non-decreasing count.

    ``inc`` adds locally observed events; ``set_total`` mirrors a
    cumulative total an existing instrumentation source already keeps
    (``cache_info().hits`` and friends) without double counting.
    """

    __slots__ = ("name", "help", "_values")

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def set_total(self, total: float, **labels: str) -> None:
        """Mirror an externally kept cumulative total (idempotent)."""
        self._values[_label_key(labels)] = total

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0)

    def samples(self):
        for key, value in sorted(self._values.items()):
            yield key, value


class Gauge:
    """A value that can go up or down (resident bytes, imbalance)."""

    __slots__ = ("name", "help", "_values")

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = value

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0)

    def samples(self):
        for key, value in sorted(self._values.items()):
            yield key, value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; every observation lands in each bucket
    whose bound is >= the value, plus the implicit ``+Inf`` bucket.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1
        # _counts is per-bucket; bucket_counts() accumulates at render
        # time, so only the first fitting bucket is charged here.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                break

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> tuple[tuple[float, int], ...]:
        """Cumulative ``(upper bound, count)`` pairs, ``+Inf`` last."""
        cumulative = []
        running = 0
        for bound, in_bucket in zip(self.buckets, self._counts):
            running += in_bucket
            cumulative.append((bound, running))
        cumulative.append((float("inf"), self._count))
        return tuple(cumulative)


class MetricsRegistry:
    """Get-or-create metric families plus the engine's ingest hooks.

    One registry typically lives as long as a process (a server, a
    benchmark run); attach it to executions via
    ``ExecutionContext(metrics=registry)`` and export at scrape time.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- families -----------------------------------------------------------

    def _get(self, factory, name: str, help_text: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, help_text, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help_text, buckets=buckets)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    # -- ingest: existing instrumentation only ------------------------------

    def record_run(self, telemetry) -> None:
        """Fold one :class:`~repro.feedback.telemetry.ExecutionTelemetry`
        snapshot in: rows emitted, intersection probes (the summed
        candidate enumerations), and completed-run count."""
        self.counter(
            "repro_rows_emitted_total",
            "Result rows emitted by measured executions",
        ).inc(telemetry.rows)
        self.counter(
            "repro_intersection_probes_total",
            "Candidate values enumerated across all levels "
            "(the engine's search work)",
        ).inc(telemetry.total_candidates)
        self.counter(
            "repro_runs_total", "Measured executions folded in"
        ).inc()

    def record_rows(self, rows: int) -> None:
        """Row-count-only ingest for executions without a per-level
        probe (algorithms outside ``NATIVE_TELEMETRY``, sharded runs)."""
        self.counter(
            "repro_rows_emitted_total",
            "Result rows emitted by measured executions",
        ).inc(rows)
        self.counter(
            "repro_runs_total", "Measured executions folded in"
        ).inc()

    def record_cache(self, info) -> None:
        """Mirror a ``Database.cache_info()`` snapshot.

        Hits / misses / evictions are the catalog's own cumulative
        counters (set, not incremented — refreshing after every run is
        idempotent); resident bytes are gauged per backend kind.
        """
        self.counter(
            "repro_index_cache_hits_total", "Index lookups served cached"
        ).set_total(info.hits)
        self.counter(
            "repro_index_cache_misses_total", "Index lookups that built"
        ).set_total(info.misses)
        self.counter(
            "repro_index_cache_evictions_total",
            "Indexes evicted to stay within budget",
        ).set_total(info.evictions)
        self.gauge(
            "repro_index_cache_entries", "Indexes currently resident"
        ).set(info.entries)
        bytes_gauge = self.gauge(
            "repro_index_cache_bytes",
            "Resident index bytes by backend kind",
        )
        bytes_gauge.set(info.bytes_total, backend="all")
        for backend, nbytes in sorted(info.bytes_by_backend.items()):
            bytes_gauge.set(nbytes, backend=backend)

    def record_shards(self, seconds_by_shard: Iterable[float]) -> None:
        """Fold one sharded run's per-shard wall times in: the shard
        wall histogram and the run's imbalance ratio (max / mean — 1.0
        is a perfectly balanced partition)."""
        seconds = [float(s) for s in seconds_by_shard]
        if not seconds:
            return
        histogram = self.histogram(
            "repro_shard_seconds", "Per-shard wall seconds"
        )
        for value in seconds:
            histogram.observe(value)
        mean = sum(seconds) / len(seconds)
        ratio = (max(seconds) / mean) if mean > 0 else 1.0
        self.gauge(
            "repro_shard_imbalance_ratio",
            "max/mean shard wall time of the last sharded run",
        ).set(ratio)
        self.counter(
            "repro_sharded_runs_total", "Sharded executions folded in"
        ).inc()

    def record_replan(self) -> None:
        """Count one feedback-driven re-plan of a prepared query."""
        self.counter(
            "repro_replans_total",
            "Prepared-query re-plans triggered by observed divergence",
        ).inc()

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Every metric with its samples, under the version header."""
        metrics = []
        for metric in self:
            entry: dict = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
            }
            if isinstance(metric, Histogram):
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                entry["buckets"] = [
                    {
                        "le": ("+Inf" if bound == float("inf") else bound),
                        "count": count,
                    }
                    for bound, count in metric.bucket_counts()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in metric.samples()
                ]
            metrics.append(entry)
        return {
            "format": METRICS_FORMAT,
            "version": __version__,
            "metrics": metrics,
        }

    def to_json(self, indent: int = 2) -> str:
        """The registry as JSON text (header included)."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        The version travels as a leading comment *and* as a standard
        ``repro_build_info`` gauge (the ``_info`` idiom), so scrapes keep
        it even after comments are stripped.
        """
        lines = [
            f"# repro {__version__} ({METRICS_FORMAT})",
            "# HELP repro_build_info Engine build that produced this scrape",
            "# TYPE repro_build_info gauge",
            f'repro_build_info{{version="{__version__}"}} 1',
        ]
        for metric in self:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.bucket_counts():
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    lines.append(
                        f'{metric.name}_bucket{{le="{le}"}} {count}'
                    )
                lines.append(f"{metric.name}_sum {metric.sum}")
                lines.append(f"{metric.name}_count {metric.count}")
            else:
                for key, value in metric.samples():
                    lines.append(
                        f"{metric.name}{_render_labels(key)} {value:g}"
                    )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metric(s))"
