"""Query observability: tracing spans, a metrics registry, EXPLAIN ANALYZE.

The engine plans from statistics (:mod:`repro.stats`) and corrects
itself from telemetry (:mod:`repro.feedback`) — this package makes what
it *did* inspectable from the outside, with zero dependencies:

* :mod:`repro.observe.tracing` — :class:`Tracer` / :class:`Span`: nested
  wall+CPU timed records of every phase the engine runs (plan,
  stats-profile, index-build, per-shard execute, fold, sample, replan).
  A tracer rides :class:`~repro.query.context.ExecutionContext`; spans
  from process-pool shard workers are shipped back as pickled records
  and re-stitched under the parent's execute span.
* :mod:`repro.observe.metrics` — :class:`MetricsRegistry`: counters,
  gauges, and histograms (rows emitted, intersection probes, cache
  hits/misses/evictions by backend, shard imbalance, replans) fed by
  the *existing* :class:`~repro.feedback.telemetry.TelemetryProbe` and
  ``Database.cache_info()`` — no instrumentation twins — exportable as
  JSON and Prometheus text.
* :mod:`repro.observe.explain` — ``EXPLAIN ANALYZE``: execute the query
  and render estimated-vs-observed cardinalities per level beside the
  span timings (``q.explain(analyze=True)``, CLI ``explain --analyze``).

``explain`` is deliberately *not* imported here: it depends on the
query layer, which itself imports this package's tracing module — the
top-level ``repro`` namespace re-exports :class:`ExplainAnalysis` once
everything is loaded.
"""

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.tracing import (
    Span,
    SpanContext,
    Tracer,
    current_tracer,
    maybe_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Tracer",
    "current_tracer",
    "maybe_span",
]
