"""EXPLAIN ANALYZE: execute a query and hold the plan to account.

``explain`` shows what the planner *intended* and the statistics that
justified it; this module runs the query and lines those estimates up
against what actually happened:

* per level of the executed attribute order, the planner's estimated
  partial-result size next to the observed ``partials`` / ``candidates``
  / ``matches`` counters (the same :class:`~repro.feedback.telemetry.
  TelemetryProbe` counters the feedback loop records — ``EXPLAIN
  ANALYZE`` works with or without a feedback context), and
* the span timings of every phase the run went through (plan,
  stats-profile, index-build, execute / per-shard, …) from a
  :class:`~repro.observe.tracing.Tracer` activated for the run.

Entry points: ``Q(...).explain(analyze=True)`` and the CLI's
``explain --analyze`` both call :func:`analyze_query`; the result is an
:class:`ExplainAnalysis` whose :meth:`~ExplainAnalysis.describe` renders
plan, estimated-vs-observed table, and span tree in one report, and
whose :meth:`~ExplainAnalysis.to_dict` is the JSON artifact CI uploads.

This module imports the query layer, which imports
:mod:`repro.observe.tracing` — so it is *not* imported from
``repro.observe.__init__`` (the top-level ``repro`` namespace re-exports
:class:`ExplainAnalysis`, and the builder imports :func:`analyze_query`
lazily).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace as _dc_replace
from time import perf_counter

from repro.engine.executors import NATIVE_TELEMETRY
from repro.feedback.telemetry import (
    TelemetryProbe,
    feedback_scope,
    level_estimates,
)
from repro.observe.tracing import Tracer
from repro.version import __version__

__all__ = ["ExplainAnalysis", "LevelAnalysis", "analyze_query"]

#: Format tag stamped into every ``to_dict`` export.
EXPLAIN_FORMAT = "repro-explain/1"


@dataclass(frozen=True)
class LevelAnalysis:
    """One level of the executed order: estimate beside observation.

    ``estimated`` is the planner's partial-result size after binding the
    attribute (``None`` when the plan carried no statistics for it);
    the three counters are ``None`` when the run produced no per-level
    telemetry (sharded or non-native execution).
    """

    attribute: str
    position: int
    estimated: float | None
    partials: int | None
    candidates: int | None
    matches: int | None

    @property
    def miss_factor(self) -> float | None:
        """How far the estimate missed, as a ratio ``>= 1.0`` in either
        direction — the per-level quantity the re-plan trigger thresholds
        (``None`` when either side is unknown)."""
        if self.estimated is None or self.matches is None:
            return None
        actual = float(max(self.matches, 1))
        expected = max(float(self.estimated), 1.0)
        return max(actual / expected, expected / actual)

    def to_dict(self) -> dict:
        return {
            "attribute": self.attribute,
            "position": self.position,
            "estimated": self.estimated,
            "partials": self.partials,
            "candidates": self.candidates,
            "matches": self.matches,
            "miss_factor": self.miss_factor,
        }


@dataclass(frozen=True)
class ExplainAnalysis:
    """What one measured execution did, next to what the plan promised.

    ``plan`` is the executed :class:`~repro.engine.planner.JoinPlan`
    with the run's observed per-level counters folded into its
    statistics (``PlanStatistics.observed_levels``), so
    ``plan.describe(show_stats=True)`` shows them too.
    """

    plan: object
    levels: tuple[LevelAnalysis, ...]
    rows: int
    wall_seconds: float
    tracer: Tracer

    def describe(self, show_stats: bool = False) -> str:
        """The full report: plan, estimated-vs-observed, span timings.

        ``show_stats`` is forwarded to ``plan.describe`` — the executed
        plan carries the run's observed levels, so the statistics block
        then includes the observed-vs-estimated comparison too.
        """
        lines = [self.plan.describe(show_stats=show_stats)]
        lines.append("")
        lines.append(
            f"EXPLAIN ANALYZE: {self.rows} row(s) in "
            f"{self.wall_seconds * 1000:.2f} ms"
        )
        if self.levels:
            lines.append(
                "  level  attribute        estimated     observed"
                "    candidates  selectivity"
            )
            for level in self.levels:
                estimated = (
                    f"~{level.estimated:.3g}"
                    if level.estimated is not None
                    else "-"
                )
                observed = (
                    str(level.matches) if level.matches is not None else "?"
                )
                candidates = (
                    str(level.candidates)
                    if level.candidates is not None
                    else "?"
                )
                if level.candidates:
                    selectivity = f"{(level.matches or 0) / level.candidates:.3f}"
                else:
                    selectivity = "-"
                lines.append(
                    f"  {level.position:>5}  {level.attribute:<15}"
                    f"  {estimated:>10}  {observed:>11}"
                    f"  {candidates:>12}  {selectivity:>11}"
                )
        else:
            lines.append("  (no per-level observation: nothing executed)")
        lines.append("span timings:")
        rendered = self.tracer.render()
        lines.append(rendered if rendered else "  (no spans recorded)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The JSON artifact: header, levels, rows, wall, span tree."""
        return {
            "format": EXPLAIN_FORMAT,
            "version": __version__,
            "algorithm": self.plan.algorithm,
            "attribute_order": list(self.plan.attribute_order),
            "rows": self.rows,
            "wall_seconds": self.wall_seconds,
            "levels": [level.to_dict() for level in self.levels],
            "trace": self.tracer.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return (
            f"ExplainAnalysis(rows={self.rows}, "
            f"levels={len(self.levels)}, "
            f"wall={self.wall_seconds * 1000:.2f}ms)"
        )


def _merge_levels(plan, telemetry) -> tuple[LevelAnalysis, ...]:
    """Line the plan's estimates up with the run's observed counters."""
    estimates = dict(level_estimates(plan.statistics))
    observed = (
        {level.attribute: level for level in telemetry.levels}
        if telemetry is not None
        else {}
    )
    levels = []
    for position, attribute in enumerate(plan.attribute_order):
        level = observed.get(attribute)
        levels.append(
            LevelAnalysis(
                attribute=attribute,
                position=position,
                estimated=estimates.get(attribute),
                partials=level.partials if level is not None else None,
                candidates=level.candidates if level is not None else None,
                matches=level.matches if level is not None else None,
            )
        )
    return tuple(levels)


def _observed_statistics(plan, telemetry):
    """The plan with the run's counters folded into its statistics
    (``PlanStatistics.observed_levels``, the field feedback plans use)."""
    if telemetry is None or plan.statistics is None:
        return plan
    statistics = _dc_replace(
        plan.statistics,
        observed_levels=tuple(
            (
                level.attribute,
                level.position,
                level.partials,
                level.candidates,
                level.matches,
            )
            for level in telemetry.levels
        ),
    )
    return _dc_replace(plan, statistics=statistics)


def analyze_query(builder) -> ExplainAnalysis:
    """Execute ``builder``'s query measured and traced; line estimates
    up against observations.

    The run is *complete* (the whole result is drained — that is what
    ANALYZE means) but rows are only counted, never materialized.  A
    per-level :class:`TelemetryProbe` is attached whenever the plan runs
    a natively instrumented algorithm serially — independent of whether
    a feedback context is configured; with one, the observation is also
    recorded into the statistics provider exactly as a normal measured
    run would.  Sharded and non-native executions still report rows,
    wall time, and spans, with per-level counters marked unknown.

    The context's own tracer is reused when set (the analysis then
    appends to the caller's trace); otherwise a private one is created.
    """
    from repro.stats.provider import resolve_provider

    ctx = builder.context
    tracer = ctx.tracer if isinstance(ctx.tracer, Tracer) else None
    if tracer is None:
        tracer = Tracer(name="explain-analyze")
        builder = builder.using(tracer=tracer)
        ctx = builder.context
    compiled = builder._compile()
    with tracer.activate():
        plan = builder.plan()

    telemetry = None
    rows = 0
    started = perf_counter()
    if (
        compiled.satisfiable
        and compiled.residual is not None
        and not ctx.parallel
        and plan.algorithm in NATIVE_TELEMETRY
    ):
        # The measured serial path: drive the executor ourselves so the
        # probe exists regardless of the feedback configuration.
        probe = TelemetryProbe(plan.attribute_order)
        with tracer.activate():
            executor = plan.executor(
                database=builder._execution_database(),
                filters=compiled.filters,
                telemetry=probe,
            )
        with tracer.span("execute", algorithm=plan.algorithm) as span:
            stream = executor.iter_join()
            if compiled.merge is not None:
                stream = map(compiled.merge, stream)
            for _ in builder._project(stream):
                rows += 1
            span.meta["rows"] = rows
        wall = perf_counter() - started
        telemetry = probe.snapshot(rows, wall, complete=True)
        if ctx.feedback is not None:
            provider = resolve_provider(ctx.database, ctx.stats)
            provider.record_levels(
                plan.query, telemetry, feedback_scope(compiled.filters)
            )
    else:
        # Degenerate, sharded, or non-native: run through the normal
        # streaming path (which opens its own execute / shard spans from
        # the context's tracer) and count.  The plan above is handed
        # through so the serial path does not plan (and span) twice.
        for _ in builder._project(builder._full_rows(compiled, plan=plan)):
            rows += 1
        wall = perf_counter() - started

    if ctx.metrics is not None and telemetry is not None:
        # The streaming path above already fed the registry through the
        # ordinary measured-rows hook; only the probe-driven path needs
        # an explicit ingest.
        ctx.metrics.record_run(telemetry)
        if ctx.database is not None:
            ctx.metrics.record_cache(ctx.database.cache_info())

    plan = _observed_statistics(plan, telemetry)
    return ExplainAnalysis(
        plan=plan,
        levels=_merge_levels(plan, telemetry),
        rows=rows,
        wall_seconds=wall,
        tracer=tracer,
    )
