"""Zero-dependency tracing: nested, timed spans over the engine's phases.

A :class:`Tracer` records a tree of :class:`Span` records — one per
engine phase (``plan``, ``stats-profile``, ``index-build``, per-shard
``execute``, ``fold``, ``sample``, ``replan``) — each carrying wall and
CPU seconds plus small metadata.  Three ways spans get opened:

* **Explicitly** — ``with tracer.span("execute"): ...`` at the sites
  that hold a tracer (the query layer, the parallel drivers).
* **Ambiently** — deep layers that must not thread a tracer through
  every signature (the planner, ``Database.index``) call
  :func:`maybe_span`, which records into the *active* tracer (a
  ``contextvars`` slot set by :meth:`Tracer.activate`) and costs one
  context-variable read when tracing is off.
* **Remotely** — a process-pool shard worker builds its own local
  tracer, runs its shard under it, and ships the finished span record
  back (spans are plain picklable data); the parent *re-stitches* it
  under its open execute span with :meth:`Tracer.attach`, validated
  against the :class:`SpanContext` that rode the worker's payload.

Spans are deliberately coarse — one per phase, never per row — so a
traced run stays within a few percent of an untraced one
(``benchmarks/bench_observe.py`` gates the overhead in CI).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.version import __version__

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "current_tracer",
    "maybe_span",
]

#: The ambient active tracer (see :meth:`Tracer.activate`).  ``None``
#: means tracing is off and :func:`maybe_span` is a no-op.
_ACTIVE: ContextVar["Tracer | None"] = ContextVar(
    "repro_active_tracer", default=None
)

#: Format tag stamped into every trace export header.
TRACE_FORMAT = "repro-trace/1"


def _cpu_clock() -> float:
    """Per-thread CPU seconds where the platform provides them (Linux,
    macOS), falling back to process CPU time."""
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - exotic hosts
        return time.process_time()


@dataclass
class Span:
    """One timed phase: name, metadata, wall/CPU seconds, children.

    Plain picklable data — worker processes ship finished spans back to
    the parent as-is.  ``meta`` holds small context (shard index, row
    counts, relation names), never bulk data.  ``wall``/``cpu`` are
    ``None`` while the span is still open.
    """

    name: str
    meta: dict = field(default_factory=dict)
    wall: float | None = None
    cpu: float | None = None
    children: list["Span"] = field(default_factory=list)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first span named ``name`` in this subtree, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """A JSON-ready nested rendering of this subtree."""
        record: dict = {"name": self.name}
        if self.meta:
            record["meta"] = dict(self.meta)
        if self.wall is not None:
            record["wall_seconds"] = self.wall
        if self.cpu is not None:
            record["cpu_seconds"] = self.cpu
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    def render(self, indent: int = 0) -> str:
        """An indented one-line-per-span tree (the ``explain --analyze``
        timing block)."""
        wall = f"{self.wall * 1000:.2f} ms" if self.wall is not None else "open"
        cpu = (
            f", cpu {self.cpu * 1000:.2f} ms" if self.cpu is not None else ""
        )
        meta = (
            " [" + ", ".join(f"{k}={v}" for k, v in self.meta.items()) + "]"
            if self.meta
            else ""
        )
        lines = [f"{'  ' * indent}{self.name}: {wall}{cpu}{meta}"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity a parent hands its remote workers.

    Carries the tracer's ``trace_id`` and the open span path at dispatch
    time; a worker's finished span comes back alongside it, and
    :meth:`Tracer.attach` verifies the id before stitching — a stale
    record from a recycled pool worker can never graft onto the wrong
    trace.
    """

    trace_id: int
    path: tuple[str, ...]


class Tracer:
    """Collects a tree of :class:`Span` records for one or more queries.

    Not thread-safe by design: one tracer belongs to one driving thread
    (worker threads and processes report via finished spans the driver
    attaches).  ``roots`` holds every completed top-level span.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.trace_id = next(Tracer._ids)
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **meta):
        """Open a child span of the innermost open span (or a new root).

        Yields the :class:`Span` so call sites can add metadata that is
        only known at the end (row counts, resolved modes)::

            with tracer.span("execute") as span:
                ...
                span.meta["rows"] = count
        """
        span = Span(name=name, meta=dict(meta))
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        wall0, cpu0 = time.perf_counter(), _cpu_clock()
        try:
            yield span
        finally:
            span.wall = time.perf_counter() - wall0
            span.cpu = _cpu_clock() - cpu0
            self._stack.pop()

    @contextmanager
    def activate(self):
        """Make this tracer the ambient one for :func:`maybe_span`."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def attach(
        self, span: Span, context: SpanContext | None = None
    ) -> None:
        """Stitch a finished span (typically shipped from a worker
        process) under the innermost open span, or as a root.

        ``context`` — the :class:`SpanContext` the worker's payload
        carried — is verified when given: a record stamped with another
        trace's id is dropped rather than grafted onto the wrong tree.
        """
        if context is not None and context.trace_id != self.trace_id:
            return
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def context(self) -> SpanContext:
        """The :class:`SpanContext` for the current open span path —
        what a parent pickles into each remote worker's payload."""
        return SpanContext(
            trace_id=self.trace_id,
            path=tuple(span.name for span in self._stack),
        )

    # -- inspection ---------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """The completed top-level spans (alias of :attr:`roots`)."""
        return self.roots

    def find(self, name: str) -> Span | None:
        """The first span named ``name`` anywhere in the trace."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        """Every span in the trace, depth-first across roots."""
        for root in self.roots:
            yield from root.walk()

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict:
        """The full trace with its version header, JSON-ready."""
        return {
            "format": TRACE_FORMAT,
            "version": __version__,
            "trace": self.name,
            "spans": [root.to_dict() for root in self.roots],
        }

    def export_json(self, indent: int = 2) -> str:
        """The trace as JSON text (header included)."""
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """The whole trace as an indented span tree."""
        return "\n".join(root.render() for root in self.roots)

    def __repr__(self) -> str:
        return (
            f"Tracer({self.name!r}, id={self.trace_id}, "
            f"spans={len(self.roots)})"
        )


def current_tracer() -> Tracer | None:
    """The ambient active tracer, or ``None`` when tracing is off."""
    return _ACTIVE.get()


@contextmanager
def maybe_span(name: str, **meta):
    """Record a span into the active tracer — a no-op (one context-var
    read) when no tracer is active.

    The hook for layers that must not carry a tracer in their
    signatures: the planner's ``plan`` / ``stats-profile`` phases and
    ``Database.index``'s ``index-build`` all run under whatever tracer
    the query layer activated, and cost nothing otherwise.  Yields the
    :class:`Span` or ``None``.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **meta) as span:
        yield span
