"""The AGM fractional-cover bound and the LP that optimizes it.

Atserias, Grohe, and Marx: for any fractional edge cover ``x`` of the query
hypergraph, ``|join| <= prod_e N_e^{x_e}`` (inequality (2) of the paper).
Given the sizes ``N_e``, the tightest such bound minimizes the linear
objective ``sum_e (log N_e) x_e`` over the cover polytope — this module
solves that LP with the exact simplex of :mod:`repro.hypergraph.simplex`.

Because ``log N_e`` is irrational, the objective is approximated by
``Fraction(log N_e).limit_denominator(10**6)`` before the exact solve.  The
returned point is an *exact vertex of the exact polytope* — feasibility (and
hence validity of the bound) is never approximate — and is optimal for the
perturbed objective, which can differ from the true optimum only through tie
breaking among near-optimal vertices.  This never affects correctness of any
algorithm, only (possibly) the constant factor of a bound.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Mapping
from fractions import Fraction

from repro.errors import CoverError, QueryError
from repro.hypergraph.covers import FractionalCover
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.simplex import solve_min_geq

#: Denominator cap used when approximating log-sizes by rationals.
LOG_DENOMINATOR_LIMIT = 10**6


def agm_log_bound(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int],
    cover: FractionalCover,
) -> float:
    """``sum_e x_e * log N_e`` — the log of the AGM bound.

    Returns ``-inf`` when a positively-weighted relation is empty (the join
    is provably empty then).
    """
    total = 0.0
    for eid in hypergraph.edges:
        weight = cover.get(eid)
        if weight == 0:
            continue
        size = sizes[eid]
        if size == 0:
            return -math.inf
        total += float(weight) * math.log(size)
    return total


def agm_bound(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int],
    cover: FractionalCover,
) -> float:
    """The AGM bound ``prod_e N_e^{x_e}`` as a float.

    Use :func:`agm_log_bound` when sizes are huge enough to overflow.
    """
    log_value = agm_log_bound(hypergraph, sizes, cover)
    if log_value == -math.inf:
        return 0.0
    return math.exp(log_value)


def cover_lp_rows(
    hypergraph: Hypergraph,
) -> tuple[list[list[int]], list[int], tuple[str, ...]]:
    """The cover polytope as ``(A, b, variable order)`` with ``A x >= b``.

    One row per vertex: coefficient 1 for each edge containing it; ``b`` is
    all ones.  Variables follow ``hypergraph.edge_ids`` order.
    """
    edge_ids = hypergraph.edge_ids
    rows = [
        [1 if vertex in hypergraph.edges[eid] else 0 for eid in edge_ids]
        for vertex in hypergraph.vertices
    ]
    rhs = [1] * len(hypergraph.vertices)
    return rows, rhs, edge_ids


def optimal_fractional_cover(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int] | None = None,
    denominator_limit: int = LOG_DENOMINATOR_LIMIT,
) -> FractionalCover:
    """The cover minimizing ``sum_e (log N_e) x_e``, as an exact LP vertex.

    With ``sizes=None`` every relation is treated as the same size, i.e. the
    objective becomes ``sum_e x_e`` (minimum fractional edge cover number).
    Sizes of 0 or 1 contribute cost 0 (``log 1 = 0``; an empty relation makes
    the join empty regardless, and charging it nothing keeps the LP
    well-defined).

    Raises
    ------
    QueryError
        If some vertex lies in no edge (no cover exists).
    """
    if not hypergraph.covers_vertices():
        raise QueryError(
            "no fractional cover exists: some attribute is in no relation"
        )
    rows, rhs, edge_ids = cover_lp_rows(hypergraph)
    if sizes is None:
        costs = [Fraction(1)] * len(edge_ids)
    else:
        costs = []
        for eid in edge_ids:
            size = sizes[eid]
            if size < 0:
                raise CoverError(f"negative size for edge {eid!r}")
            log_size = math.log(size) if size > 1 else 0.0
            costs.append(
                Fraction(log_size).limit_denominator(denominator_limit)
            )
    result = solve_min_geq(costs, rows, rhs)
    return FractionalCover(dict(zip(edge_ids, result.x)))


def optimal_vertex_cover_support(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int],
) -> frozenset[str]:
    """``BFS(S)`` of Section 7.2: the support of the optimal LP vertex.

    Determinism matters here ("pick any one in a consistent manner"): the
    exact simplex with Bland's rule is deterministic given the hypergraph's
    edge order, so equal subproblems always yield the same support.
    """
    return optimal_fractional_cover(hypergraph, sizes).support()


def best_agm_bound(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int],
) -> tuple[FractionalCover, float]:
    """Optimal cover together with its (float) AGM bound."""
    cover = optimal_fractional_cover(hypergraph, sizes)
    return cover, agm_bound(hypergraph, sizes, cover)


def minimum_integral_cover(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int] | None = None,
) -> FractionalCover:
    """The best 0/1 (set-style) edge cover, by exhaustive search.

    This is the classical "cover" that yields bounds like ``N^2`` for the
    triangle query in the paper's introduction — the object fractional
    covers strictly improve upon.  Exponential in ``|E|``; intended for the
    small query hypergraphs of the paper, baselines, and ablations.
    """
    if not hypergraph.covers_vertices():
        raise QueryError(
            "no integral cover exists: some attribute is in no relation"
        )
    edge_ids = hypergraph.edge_ids
    vertex_set = set(hypergraph.vertices)
    best: tuple[float, int, frozenset[str]] | None = None
    for r in range(1, len(edge_ids) + 1):
        for subset in itertools.combinations(edge_ids, r):
            covered: set[str] = set()
            for eid in subset:
                covered |= hypergraph.edges[eid]
            if covered != vertex_set:
                continue
            if sizes is None:
                cost = float(r)
            else:
                cost = sum(
                    math.log(sizes[eid]) if sizes[eid] > 1 else 0.0
                    for eid in subset
                )
            key = (cost, r, frozenset(subset))
            if best is None or key < best:
                best = key
        if best is not None and sizes is None:
            break  # all covers of this (minimal) size cost the same
    if best is None:
        raise QueryError("no integral cover found (unreachable)")
    chosen = best[2]
    return FractionalCover(
        {eid: Fraction(1 if eid in chosen else 0) for eid in edge_ids}
    )
