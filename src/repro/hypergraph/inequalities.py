"""Discrete geometric inequalities: Loomis-Whitney and Bollobas-Thomason.

Section 3 of the paper proves that AGM's fractional-cover inequality is
*equivalent* to the discrete Bollobas-Thomason (BT) inequality, whose
special case ``F = all (n-1)-subsets`` is the discrete Loomis-Whitney (LW)
inequality.  This module provides:

* verifiers that check the inequalities numerically on concrete point sets
  (used by property tests and by the E5 tightness benchmark), and
* the two constructions of Proposition 3.3 — reading a point set as a join
  instance (AGM => BT) and replicating edges of a tight rational cover into
  a ``d``-regular family (BT => AGM).

Together with the algorithms of Sections 4-5, running a join on these
constructions is the paper's *algorithmic proof* of the inequalities.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import CoverError, QueryError
from repro.hypergraph.covers import FractionalCover, tighten_cover
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.relation import Relation

#: An n-dimensional grid point.
Point = tuple[int, ...]


def project_points(
    points: Iterable[Point], coordinates: Sequence[int]
) -> set[Point]:
    """``S_F``: the projections of ``points`` onto ``coordinates``."""
    return {tuple(p[i] for i in coordinates) for p in points}


@dataclass(frozen=True)
class InequalityCheck:
    """Result of verifying ``|S|^d <= prod_F |S_F|`` on a point set.

    ``lhs_log``/``rhs_log`` hold the two sides in log space (safe for huge
    values); ``ratio`` is ``rhs / lhs`` (>= 1 iff the inequality holds,
    == 1 at tightness).
    """

    holds: bool
    lhs_log: float
    rhs_log: float

    @property
    def ratio(self) -> float:
        return math.exp(self.rhs_log - self.lhs_log)

    @property
    def tight(self) -> bool:
        return abs(self.rhs_log - self.lhs_log) < 1e-9


def verify_bt(
    points: Iterable[Point],
    family: Sequence[Sequence[int]],
    regularity: int | None = None,
) -> InequalityCheck:
    """Check the discrete Bollobas-Thomason inequality (Theorem 3.1).

    ``family`` is a collection of coordinate subsets in which every
    coordinate of the points must occur in exactly ``d`` members; then
    ``|S|^d <= prod_F |S_F|``.

    Parameters
    ----------
    points:
        A finite set of n-dimensional integer grid points (n inferred).
    family:
        The cover family ``F`` (lists of coordinate indices).
    regularity:
        The degree ``d``; inferred (and checked) when omitted.
    """
    point_set = set(points)
    if not point_set:
        return InequalityCheck(True, -math.inf, 0.0)
    n = len(next(iter(point_set)))
    occurrences = [0] * n
    for subset in family:
        for i in subset:
            if not 0 <= i < n:
                raise QueryError(f"coordinate {i} out of range for n={n}")
            occurrences[i] += 1
    degrees = set(occurrences)
    if len(degrees) != 1:
        raise QueryError(
            f"family is not regular: occurrence counts {occurrences}"
        )
    d = degrees.pop()
    if regularity is not None and regularity != d:
        raise QueryError(f"declared regularity {regularity} but family has {d}")
    if d == 0:
        raise QueryError("family has regularity 0: no cover at all")
    lhs_log = d * math.log(len(point_set))
    rhs_log = sum(
        math.log(len(project_points(point_set, subset))) for subset in family
    )
    return InequalityCheck(lhs_log <= rhs_log + 1e-9, lhs_log, rhs_log)


def verify_lw(points: Iterable[Point]) -> InequalityCheck:
    """Check the discrete Loomis-Whitney inequality (Theorem 3.4).

    ``|S|^{n-1} <= prod_i |S_{[n] \\ {i}}|`` — BT with the family of all
    (n-1)-subsets of coordinates.
    """
    point_set = set(points)
    if not point_set:
        return InequalityCheck(True, -math.inf, 0.0)
    n = len(next(iter(point_set)))
    if n < 2:
        raise QueryError("LW inequality needs dimension >= 2")
    family = [
        [j for j in range(n) if j != i] for i in range(n)
    ]
    return verify_bt(point_set, family, regularity=n - 1)


def bt_instance_from_points(
    points: Iterable[Point],
    family: Sequence[Sequence[int]],
) -> tuple[Hypergraph, dict[str, Relation], FractionalCover]:
    """AGM => BT direction of Proposition 3.3.

    Treat each coordinate as an attribute and each projection ``S_F`` as an
    input relation; the cover ``x_F = 1/d`` is fractional for the resulting
    hypergraph, and the AGM bound on the instance *is* the BT right-hand
    side.  Joining the relations recovers a superset of ``S`` whose size is
    bounded by ``prod |S_F|^{1/d}`` — running any of this library's
    worst-case optimal joins on the output therefore *algorithmically
    proves* BT for the point set.
    """
    point_set = set(points)
    if not point_set:
        raise QueryError("empty point set")
    n = len(next(iter(point_set)))
    vertices = tuple(f"X{i}" for i in range(n))
    occurrences = [0] * n
    edges: dict[str, tuple[str, ...]] = {}
    relations: dict[str, Relation] = {}
    for index, subset in enumerate(family):
        for i in subset:
            occurrences[i] += 1
        eid = f"F{index}"
        edges[eid] = tuple(vertices[i] for i in subset)
        relations[eid] = Relation(
            eid, edges[eid], project_points(point_set, list(subset))
        )
    degrees = set(occurrences)
    if len(degrees) != 1 or 0 in degrees:
        raise QueryError(f"family is not regular: {occurrences}")
    d = degrees.pop()
    hypergraph = Hypergraph(vertices, edges)
    cover = FractionalCover({eid: Fraction(1, d) for eid in edges})
    return hypergraph, relations, cover


def replicate_to_regular_family(
    hypergraph: Hypergraph,
    cover: FractionalCover,
    relations: dict[str, Relation],
) -> tuple[Hypergraph, dict[str, Relation], int]:
    """BT => AGM direction of Proposition 3.3.

    First tighten the cover (Lemma 3.2), then write every weight as
    ``d_e / d`` over the common denominator ``d`` and create ``d_e`` copies
    of each edge.  The result is a hypergraph in which **every vertex lies
    in exactly d edges** — the Bollobas-Thomason setting — whose BT bound
    ``prod |R'_e|^{1/d}`` equals the original AGM bound.

    Returns the replicated hypergraph, its relations (copies share tuple
    sets), and the regularity ``d``.
    """
    tight_h, tight_cover, tight_rels = tighten_cover(
        hypergraph, cover, relations
    )
    d = tight_cover.common_denominator()
    edges: dict[str, frozenset[str]] = {}
    new_relations: dict[str, Relation] = {}
    for eid, members in tight_h.edges.items():
        copies = tight_cover.get(eid) * d
        if copies.denominator != 1:
            raise CoverError(
                f"weight {tight_cover.get(eid)} of {eid!r} is not a multiple "
                f"of 1/{d} (internal error)"
            )
        for c in range(int(copies)):
            copy_id = f"{eid}#{c}"
            edges[copy_id] = members
            new_relations[copy_id] = tight_rels[eid].with_name(copy_id)
    replicated = Hypergraph(tight_h.vertices, edges)
    for vertex in replicated.vertices:
        if replicated.degree(vertex) != d:
            raise CoverError(
                f"vertex {vertex!r} has degree {replicated.degree(vertex)}, "
                f"expected {d} (internal error)"
            )
    return replicated, new_relations, d
