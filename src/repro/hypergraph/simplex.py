"""An exact two-phase simplex solver over ``fractions.Fraction``.

The paper needs linear programming in three places, each requiring a
*vertex* (basic feasible solution), not merely an optimal value:

* the optimal fractional edge cover minimizing ``sum_e (log N_e) x_e``
  (Section 2) — any optimal point works for correctness, a vertex is used
  for determinism;
* Lemma 7.2's half-integrality argument, which is a statement about *basic*
  feasible solutions of the cover polyhedron of a graph;
* ``BFS(S)`` in the relaxed-join machinery (Section 7.2), defined as the
  support of "an optimal basic feasible solution ... picked in a consistent
  manner".

Floating-point LP solvers return points polluted by tolerance thresholds,
which would break the half-integrality and support-equality checks, so we
implement the textbook dense two-phase simplex with Bland's anti-cycling
rule over exact rationals.  Cover LPs are tiny (``m`` variables, ``n``
constraints), so the cubic cost is irrelevant.

Only the standard form is supported::

    minimize    c . x
    subject to  A x >= b,   x >= 0

which is exactly the fractional edge cover polytope's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Iterable, Sequence

from repro.errors import InfeasibleProgramError, UnboundedProgramError

#: Anything convertible to Fraction.
Rational = Fraction | int


@dataclass(frozen=True)
class SimplexResult:
    """Outcome of an exact LP solve.

    Attributes
    ----------
    x:
        Optimal vertex, one Fraction per original variable.
    objective:
        Exact optimal objective value.
    basis:
        Indices (into the extended variable space) of the final basic
        variables; exposed mostly for tests and debugging.
    """

    x: tuple[Fraction, ...]
    objective: Fraction
    basis: tuple[int, ...]

    def support(self) -> tuple[int, ...]:
        """Indices of strictly positive coordinates of the vertex."""
        return tuple(i for i, v in enumerate(self.x) if v > 0)


def solve_min_geq(
    costs: Sequence[Rational],
    rows: Sequence[Sequence[Rational]],
    rhs: Sequence[Rational],
) -> SimplexResult:
    """Solve ``min c.x  s.t.  A x >= b, x >= 0`` exactly.

    Parameters
    ----------
    costs:
        Objective coefficients ``c`` (length = number of variables).
    rows:
        Constraint matrix ``A``, one row per ``>=`` constraint.
    rhs:
        Right-hand sides ``b``.

    Returns
    -------
    SimplexResult
        An optimal basic feasible solution (vertex of the polyhedron).

    Raises
    ------
    InfeasibleProgramError
        If no point satisfies the constraints.
    UnboundedProgramError
        If the objective is unbounded below.
    """
    c = [Fraction(v) for v in costs]
    a = [[Fraction(v) for v in row] for row in rows]
    b = [Fraction(v) for v in rhs]
    n = len(c)
    k = len(a)
    for i, row in enumerate(a):
        if len(row) != n:
            raise ValueError(
                f"constraint row {i} has {len(row)} coefficients, expected {n}"
            )
    if len(b) != k:
        raise ValueError(f"{len(b)} right-hand sides for {k} constraints")

    # Convert A x >= b into equalities  A x - s = b  with surplus s >= 0,
    # then normalize rows so every right-hand side is non-negative (flip
    # the sign of rows with negative b, turning -s into +slack).
    # Extended variable layout: [x (n) | s (k) | artificial (k)].
    width = n + 2 * k
    tableau: list[list[Fraction]] = []
    for i in range(k):
        row = a[i] + [Fraction(0)] * (2 * k) + [b[i]]
        row[n + i] = Fraction(-1)  # surplus
        if b[i] < 0:
            row = [-v for v in row]
        row[n + k + i] = Fraction(1)  # artificial
        tableau.append(row)
    basis = [n + k + i for i in range(k)]

    # ---- Phase 1: minimize the sum of artificials. -------------------------
    phase1_costs = [Fraction(0)] * (n + k) + [Fraction(1)] * k
    _optimize(tableau, basis, phase1_costs, width)
    infeasibility = sum(
        tableau[i][width] for i in range(len(tableau)) if basis[i] >= n + k
    )
    if infeasibility > 0:
        raise InfeasibleProgramError(
            f"phase-1 optimum {infeasibility} > 0: constraints are infeasible"
        )
    _expel_artificials(tableau, basis, n + k, width)

    # ---- Phase 2: original objective over x and s (artificials cost 0 and
    # are barred from re-entering by the column filter below). -------------
    phase2_costs = c + [Fraction(0)] * (2 * k)
    _optimize(tableau, basis, phase2_costs, width, forbidden_from=n + k)

    x = [Fraction(0)] * n
    for row_index, var in enumerate(basis):
        if var < n:
            x[var] = tableau[row_index][width]
    objective = sum(
        (ci * xi for ci, xi in zip(c, x)), start=Fraction(0)
    )
    return SimplexResult(tuple(x), objective, tuple(basis))


def _optimize(
    tableau: list[list[Fraction]],
    basis: list[int],
    costs: list[Fraction],
    width: int,
    forbidden_from: int | None = None,
) -> None:
    """Run primal simplex with Bland's rule until optimal.

    Mutates ``tableau`` and ``basis`` in place.  ``forbidden_from`` bars all
    columns with index >= it from entering (used to keep artificial
    variables out during phase 2).
    """
    rows = len(tableau)
    reduced = _reduced_costs(tableau, basis, costs, width)
    limit = width if forbidden_from is None else forbidden_from
    while True:
        entering = -1
        for j in range(limit):
            if reduced[j] < 0:
                entering = j  # Bland: first (lowest-index) negative column
                break
        if entering < 0:
            return
        # Ratio test; Bland's tie-break = lowest basic variable index.
        leaving = -1
        best_ratio: Fraction | None = None
        for i in range(rows):
            coeff = tableau[i][entering]
            if coeff > 0:
                ratio = tableau[i][width] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            raise UnboundedProgramError(
                f"column {entering} has no positive pivot: objective unbounded"
            )
        _pivot(tableau, basis, leaving, entering, width)
        reduced = _reduced_costs(tableau, basis, costs, width)


def _reduced_costs(
    tableau: list[list[Fraction]],
    basis: list[int],
    costs: list[Fraction],
    width: int,
) -> list[Fraction]:
    """``c_j - c_B . (column j of B^-1 A)`` for every column j."""
    reduced = list(costs)
    for i, var in enumerate(basis):
        c_basic = costs[var]
        if c_basic == 0:
            continue
        row = tableau[i]
        for j in range(width):
            if row[j]:
                reduced[j] -= c_basic * row[j]
    return reduced


def _pivot(
    tableau: list[list[Fraction]],
    basis: list[int],
    pivot_row: int,
    pivot_col: int,
    width: int,
) -> None:
    """Gauss-Jordan pivot on (pivot_row, pivot_col)."""
    row = tableau[pivot_row]
    factor = row[pivot_col]
    tableau[pivot_row] = [v / factor for v in row]
    row = tableau[pivot_row]
    for i, other in enumerate(tableau):
        if i == pivot_row:
            continue
        coeff = other[pivot_col]
        if coeff:
            tableau[i] = [
                other_v - coeff * row_v for other_v, row_v in zip(other, row)
            ]
    basis[pivot_row] = pivot_col


def _expel_artificials(
    tableau: list[list[Fraction]],
    basis: list[int],
    first_artificial: int,
    width: int,
) -> None:
    """Pivot zero-level artificial variables out of the basis.

    After a feasible phase 1, any artificial still basic sits at level 0.
    We pivot each one out on any non-artificial column with a non-zero
    coefficient; if none exists the row is a redundant 0 = 0 constraint and
    is dropped.
    """
    i = 0
    while i < len(tableau):
        if basis[i] < first_artificial:
            i += 1
            continue
        pivot_col = next(
            (
                j
                for j in range(first_artificial)
                if tableau[i][j] != 0
            ),
            None,
        )
        if pivot_col is None:
            del tableau[i]
            del basis[i]
            continue
        _pivot(tableau, basis, i, pivot_col, width)
        i += 1


def feasible_point_check(
    rows: Sequence[Sequence[Rational]],
    rhs: Sequence[Rational],
    point: Iterable[Rational],
) -> bool:
    """Exact check that ``point`` satisfies ``A x >= b`` and ``x >= 0``."""
    x = [Fraction(v) for v in point]
    if any(v < 0 for v in x):
        return False
    for row, bound in zip(rows, rhs):
        total = sum(
            (Fraction(coef) * xi for coef, xi in zip(row, x)),
            start=Fraction(0),
        )
        if total < Fraction(bound):
            return False
    return True
