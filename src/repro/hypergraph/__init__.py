"""Hypergraph substrate: query hypergraphs, covers, exact LP, AGM bound."""

from repro.hypergraph.agm import (
    agm_bound,
    agm_log_bound,
    best_agm_bound,
    minimum_integral_cover,
    optimal_fractional_cover,
    optimal_vertex_cover_support,
)
from repro.hypergraph.covers import FractionalCover, tighten_cover
from repro.hypergraph.duality import (
    optimal_vertex_packing,
    packing_lower_bound,
    packing_value,
    tight_instance,
)
from repro.hypergraph.hypergraph import Hypergraph, lw_hypergraph
from repro.hypergraph.inequalities import (
    InequalityCheck,
    bt_instance_from_points,
    project_points,
    replicate_to_regular_family,
    verify_bt,
    verify_lw,
)
from repro.hypergraph.simplex import SimplexResult, solve_min_geq

__all__ = [
    "FractionalCover",
    "Hypergraph",
    "InequalityCheck",
    "SimplexResult",
    "agm_bound",
    "agm_log_bound",
    "best_agm_bound",
    "bt_instance_from_points",
    "lw_hypergraph",
    "minimum_integral_cover",
    "optimal_fractional_cover",
    "optimal_vertex_cover_support",
    "optimal_vertex_packing",
    "packing_lower_bound",
    "packing_value",
    "project_points",
    "replicate_to_regular_family",
    "solve_min_geq",
    "tight_instance",
    "tighten_cover",
    "verify_bt",
    "verify_lw",
]
