"""Fractional edge covers and the Lemma 3.2 tightening transformation.

A point ``x = (x_e)_{e in E}`` lies in the *fractional edge cover polytope*
of a hypergraph ``H = (V, E)`` when::

    sum_{e : v in e} x_e >= 1   for every vertex v,
    x_e >= 0                    for every edge e.

Covers drive everything in the paper: the AGM bound is ``prod_e N_e^{x_e}``
(inequality (2)), Algorithm 2 consumes a cover and rescales it down the
query-plan tree, and Lemma 3.2 converts an arbitrary cover into a *tight*
one (every vertex constraint met with equality) without changing the join
and without weakening the bound — the bridge to the Bollobas-Thomason
inequality in Proposition 3.3.

Weights are exact :class:`fractions.Fraction` values throughout.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from fractions import Fraction

from repro.errors import CoverError
from repro.hypergraph.hypergraph import Hypergraph
from repro.relations.relation import Relation


class FractionalCover:
    """An immutable assignment of rational weights to hyperedges."""

    __slots__ = ("weights",)

    def __init__(self, weights: Mapping[str, Fraction | int]) -> None:
        object.__setattr__(
            self,
            "weights",
            {eid: Fraction(w) for eid, w in weights.items()},
        )

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("FractionalCover instances are immutable")

    def __reduce__(self):
        # Rebuild through __init__ — default slot-based pickling trips the
        # immutability guard; covers travel with plans to shard workers.
        return (FractionalCover, (self.weights,))

    # -- mapping protocol ---------------------------------------------------

    def __getitem__(self, edge_id: str) -> Fraction:
        try:
            return self.weights[edge_id]
        except KeyError:
            raise CoverError(f"cover has no weight for edge {edge_id!r}") from None

    def get(self, edge_id: str, default: Fraction = Fraction(0)) -> Fraction:
        """Weight of ``edge_id``, or ``default`` when absent."""
        return self.weights.get(edge_id, default)

    def __iter__(self):
        return iter(self.weights)

    def __len__(self) -> int:
        return len(self.weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FractionalCover):
            return NotImplemented
        return self.weights == other.weights

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.weights.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{e}={w}" for e, w in sorted(self.weights.items()))
        return f"FractionalCover({inner})"

    def items(self):
        """(edge id, weight) pairs."""
        return self.weights.items()

    # -- cover semantics ------------------------------------------------------

    def coverage(self, hypergraph: Hypergraph, vertex: str) -> Fraction:
        """``sum_{e : v in e} x_e`` for one vertex."""
        return sum(
            (
                self.weights.get(eid, Fraction(0))
                for eid, edge in hypergraph.edges.items()
                if vertex in edge
            ),
            start=Fraction(0),
        )

    def slack(self, hypergraph: Hypergraph, vertex: str) -> Fraction:
        """Coverage minus 1 (negative means the constraint is violated)."""
        return self.coverage(hypergraph, vertex) - 1

    def validate(self, hypergraph: Hypergraph) -> None:
        """Raise :class:`~repro.errors.CoverError` unless this is a valid
        fractional edge cover of ``hypergraph``."""
        unknown = set(self.weights) - set(hypergraph.edges)
        if unknown:
            raise CoverError(f"cover weights for unknown edges {sorted(unknown)}")
        negative = [eid for eid, w in self.weights.items() if w < 0]
        if negative:
            raise CoverError(f"negative weights on edges {sorted(negative)}")
        for vertex in hypergraph.vertices:
            cov = self.coverage(hypergraph, vertex)
            if cov < 1:
                raise CoverError(
                    f"vertex {vertex!r} covered only {cov} (< 1)"
                )

    def is_valid(self, hypergraph: Hypergraph) -> bool:
        """True when :meth:`validate` passes."""
        try:
            self.validate(hypergraph)
        except CoverError:
            return False
        return True

    def is_tight(self, hypergraph: Hypergraph) -> bool:
        """True when every vertex constraint holds with equality
        (Lemma 3.2 (a))."""
        return all(
            self.coverage(hypergraph, v) == 1 for v in hypergraph.vertices
        )

    def support(self) -> frozenset[str]:
        """Edges with strictly positive weight."""
        return frozenset(e for e, w in self.weights.items() if w > 0)

    def total_weight(self) -> Fraction:
        """``sum_e x_e`` (the exponent of the uniform-size bound)."""
        return sum(self.weights.values(), start=Fraction(0))

    def common_denominator(self) -> int:
        """Least common denominator ``d`` of all weights (>= 1).

        Proposition 3.3 writes a tight rational cover as ``d_e / d``; this is
        that ``d``.
        """
        d = 1
        for w in self.weights.values():
            d = d * w.denominator // math.gcd(d, w.denominator)
        return d

    def restrict(self, edge_ids: Iterable[str]) -> "FractionalCover":
        """Keep only weights of the listed edges (Algorithm 2's ``y_{E_k}``)."""
        ids = set(edge_ids)
        return FractionalCover(
            {eid: w for eid, w in self.weights.items() if eid in ids}
        )

    def scaled(self, factor: Fraction) -> "FractionalCover":
        """Multiply every weight by ``factor`` (the ``y / (1 - y_k)``
        rescaling of Procedure 5)."""
        return FractionalCover(
            {eid: w * Fraction(factor) for eid, w in self.weights.items()}
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def uniform(
        cls, hypergraph: Hypergraph, weight: Fraction | int
    ) -> "FractionalCover":
        """Every edge gets the same ``weight``."""
        w = Fraction(weight)
        return cls({eid: w for eid in hypergraph.edges})

    @classmethod
    def all_ones(cls, hypergraph: Hypergraph) -> "FractionalCover":
        """The trivially feasible ``x_e = 1`` cover (Section 2)."""
        return cls.uniform(hypergraph, 1)

    @classmethod
    def loomis_whitney(cls, hypergraph: Hypergraph) -> "FractionalCover":
        """The LW cover ``x_e = 1/(n-1)`` (valid for LW instances)."""
        n = len(hypergraph.vertices)
        if n < 2:
            raise CoverError("LW cover needs at least 2 vertices")
        return cls.uniform(hypergraph, Fraction(1, n - 1))


def tighten_cover(
    hypergraph: Hypergraph,
    cover: FractionalCover,
    relations: Mapping[str, Relation],
) -> tuple[Hypergraph, FractionalCover, dict[str, Relation]]:
    """Lemma 3.2: transform an instance so the cover becomes tight.

    Given a valid cover ``x`` of ``H`` and the relations, produce
    ``(H', x', relations')`` such that

    (a) ``x'`` is a tight fractional cover of ``H'``
        (``sum_{e' : v in e'} x'_e = 1`` for every vertex),
    (b) the two instances have the same join (new edges carry projections
        of existing relations, which never shrink a join), and
    (c) the new AGM bound is no worse:
        ``prod |R'_e|^{x'_e} <= prod |R_e|^{x_e}``.

    The procedure follows the lemma's proof: while some vertex ``v`` is
    slack, pick a positively-weighted edge ``f`` containing it, split ``f``
    into its tight part ``f_t`` and slack part, shift weight from ``f`` onto
    a new edge over ``f_t`` (whose relation is ``pi_{f_t}(R_f)``), choosing
    the shift ``rho`` so that either ``x_f`` hits zero or some slack vertex
    becomes tight.  Each iteration makes irreversible progress, so at most
    ``|E| + |V|`` iterations run.
    """
    cover.validate(hypergraph)
    for eid in hypergraph.edges:
        if eid not in relations:
            raise CoverError(f"no relation supplied for edge {eid!r}")

    vertices = hypergraph.vertices
    edges: dict[str, frozenset[str]] = dict(hypergraph.edges)
    weights: dict[str, Fraction] = {
        eid: cover.get(eid) for eid in hypergraph.edges
    }
    new_relations: dict[str, Relation] = dict(relations)
    fresh = 0

    def coverage(v: str) -> Fraction:
        return sum(
            (w for eid, w in weights.items() if v in edges[eid]),
            start=Fraction(0),
        )

    max_iterations = len(edges) + len(vertices) + 1
    for _ in range(max_iterations * 2):
        slack_vertices = [v for v in vertices if coverage(v) > 1]
        if not slack_vertices:
            break
        v = slack_vertices[0]
        f = next(
            eid
            for eid, edge in edges.items()
            if v in edge and weights[eid] > 0
        )
        f_members = edges[f]
        tight_part = frozenset(u for u in f_members if coverage(u) == 1)
        slack_part = f_members - tight_part
        min_slack = min(coverage(u) - 1 for u in slack_part)
        x_f = weights[f]
        if x_f <= min_slack:
            moved = x_f
            weights[f] = Fraction(0)
        else:
            moved = min_slack
            weights[f] = x_f - min_slack
        if tight_part and moved > 0:
            fresh += 1
            new_id = f"{f}__tight{fresh}"
            edges[new_id] = tight_part
            weights[new_id] = moved
            new_relations[new_id] = (
                new_relations[f]
                .project(
                    [a for a in new_relations[f].attributes if a in tight_part]
                )
                .with_name(new_id)
            )
    else:
        raise CoverError("tightening did not converge (internal error)")

    new_hypergraph = Hypergraph(vertices, edges)
    new_cover = FractionalCover(weights)
    return new_hypergraph, new_cover, new_relations
