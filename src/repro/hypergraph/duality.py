"""The dual of the cover LP: fractional vertex packings and tight instances.

AGM's tightness proof works through LP duality: the dual of

    min  sum_e (log N_e) x_e   s.t.  sum_{e : v in e} x_e >= 1,  x >= 0

is the *fractional vertex packing* program

    max  sum_v y_v             s.t.  sum_{v in e} y_v <= log N_e,  y >= 0.

A feasible packing ``y`` certifies a lower bound: the **product instance**
assigning attribute ``v`` a domain of size ``~exp(y_v)`` and filling every
relation with the full product of its attribute domains satisfies the size
budgets (by dual feasibility) and has join size ``exp(sum_v y_v)`` — by
strong duality equal to the AGM bound at the optimum, up to integer
rounding of the domain sizes.  This is the worst case that makes the
worst-case optimal algorithms worst-case optimal.

(The same dual object is Gottlob-Lee-Valiant's "coloring number" view the
paper's related work cites.)
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from fractions import Fraction

from repro.errors import CoverError, QueryError
from repro.hypergraph.agm import LOG_DENOMINATOR_LIMIT
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.simplex import solve_min_geq
from repro.relations.relation import Relation


def optimal_vertex_packing(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int] | None = None,
    denominator_limit: int = LOG_DENOMINATOR_LIMIT,
) -> dict[str, Fraction]:
    """The optimal fractional vertex packing (the cover LP's dual).

    With ``sizes=None`` every budget is 1 (the combinatorial packing
    number).  Solved exactly; by strong duality its value equals the
    primal optimum of :func:`repro.hypergraph.agm.optimal_fractional_cover`
    for the same (rationalized) objective — property-tested.
    """
    if not hypergraph.covers_vertices():
        raise QueryError(
            "the packing LP's primal has no cover: some attribute is in "
            "no relation"
        )
    vertices = hypergraph.vertices
    edge_ids = hypergraph.edge_ids
    budgets: list[Fraction] = []
    for eid in edge_ids:
        if sizes is None:
            budgets.append(Fraction(1))
        else:
            size = sizes[eid]
            if size < 0:
                raise CoverError(f"negative size for edge {eid!r}")
            log_size = math.log(size) if size > 1 else 0.0
            budgets.append(
                Fraction(log_size).limit_denominator(denominator_limit)
            )
    # max 1.y  s.t.  sum_{v in e} y_v <= budget_e, y >= 0
    #   ==  min (-1).y  s.t.  -sum_{v in e} y_v >= -budget_e, y >= 0.
    rows = [
        [-1 if vertex in hypergraph.edges[eid] else 0 for vertex in vertices]
        for eid in edge_ids
    ]
    costs = [Fraction(-1)] * len(vertices)
    rhs = [-b for b in budgets]
    result = solve_min_geq(costs, rows, rhs)
    return dict(zip(vertices, result.x))


def packing_value(packing: Mapping[str, Fraction]) -> Fraction:
    """``sum_v y_v`` — the log of the certified output lower bound."""
    return sum(packing.values(), start=Fraction(0))


def packing_lower_bound(packing: Mapping[str, Fraction]) -> float:
    """``exp(sum_v y_v)`` — tuples any algorithm must be able to output."""
    return math.exp(float(packing_value(packing)))


def tight_instance(
    hypergraph: Hypergraph,
    sizes: Mapping[str, int],
) -> "JoinQuery":
    """AGM's worst-case witness: the product instance from the dual.

    Attribute ``v`` gets the domain ``{0 .. floor(exp(y*_v)) - 1}`` for the
    optimal packing ``y*``; every relation is the full product of its
    attribute domains.  Then

    * ``|R_e| = prod_{v in e} D_v <= exp(sum_{v in e} y_v) <= N_e``
      (dual feasibility): the instance respects the size budgets;
    * ``|join| = prod_v D_v ~ exp(sum_v y_v)``, which by strong duality is
      the AGM bound — so the bound is met up to the integer rounding of
      each domain (exactly, whenever every ``exp(y_v)`` is integral, e.g.
      the paper's uniform grids).

    Useful for adversarial testing: feed the result to any join algorithm
    and its output size *is* (approximately) the bound.
    """
    import itertools

    # Imported here: repro.core depends on repro.hypergraph, so the
    # package-level import would be circular.
    from repro.core.query import JoinQuery

    packing = optimal_vertex_packing(hypergraph, sizes)
    domains = {
        vertex: max(1, int(math.exp(float(weight)) + 1e-9))
        for vertex, weight in packing.items()
    }
    relations = {}
    for eid, members in hypergraph.edges.items():
        attrs = tuple(a for a in hypergraph.vertices if a in members)
        rows = itertools.product(*[range(domains[a]) for a in attrs])
        relation = Relation(eid, attrs, rows)
        if len(relation) > sizes[eid]:
            raise CoverError(
                f"internal error: tight instance exceeds budget on {eid!r} "
                f"({len(relation)} > {sizes[eid]})"
            )
        relations[eid] = relation
    return JoinQuery.from_hypergraph(hypergraph, relations)
