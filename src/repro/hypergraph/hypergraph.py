"""Query hypergraphs: the ``H = (V, E)`` view of a natural join query.

Section 2 of the paper maps a join query onto a hypergraph whose vertices
are the attributes and whose edges are the relations' attribute sets.  We
keep edges *labelled* (a dict from edge id to attribute set) so that:

* two relations over the same attributes stay distinct (the multiset
  hypergraphs needed for full conjunctive queries, Section 7.3, and the
  duplicated edges of Proposition 3.3's BT construction);
* the fixed edge order ``e_1, ..., e_m`` that Algorithm 3 requires is the
  insertion order, deterministic and controllable by the caller.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import QueryError


class Hypergraph:
    """A vertex set plus labelled edges (attribute subsets).

    Parameters
    ----------
    vertices:
        The attribute universe ``V``, ordered (the order is used only for
        deterministic iteration and display).
    edges:
        Mapping from edge id to an iterable of vertices.  Iteration order of
        the mapping fixes the paper's edge order ``e_1, ..., e_m``.
    """

    __slots__ = ("vertices", "edges", "_vertex_set")

    def __init__(
        self,
        vertices: Iterable[str],
        edges: Mapping[str, Iterable[str]],
    ) -> None:
        vs = tuple(vertices)
        if len(set(vs)) != len(vs):
            raise QueryError(f"duplicate vertices in {vs!r}")
        vertex_set = frozenset(vs)
        labelled: dict[str, frozenset[str]] = {}
        for edge_id, members in edges.items():
            edge = frozenset(members)
            unknown = edge - vertex_set
            if unknown:
                raise QueryError(
                    f"edge {edge_id!r} mentions unknown vertices {sorted(unknown)}"
                )
            labelled[edge_id] = edge
        self.vertices = vs
        self.edges = labelled
        self._vertex_set = vertex_set

    # -- basic protocol ----------------------------------------------------------

    @property
    def vertex_set(self) -> frozenset[str]:
        """The universe ``V`` as a frozenset."""
        return self._vertex_set

    @property
    def edge_ids(self) -> tuple[str, ...]:
        """Edge ids in the fixed order ``e_1, ..., e_m``."""
        return tuple(self.edges)

    def edge(self, edge_id: str) -> frozenset[str]:
        """The attribute set of one edge."""
        try:
            return self.edges[edge_id]
        except KeyError:
            raise QueryError(f"unknown edge {edge_id!r}") from None

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[str]:
        return iter(self.edges)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{eid}={{{','.join(sorted(e))}}}" for eid, e in self.edges.items()
        )
        return f"Hypergraph(V={{{','.join(self.vertices)}}}, {inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._vertex_set == other._vertex_set and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self._vertex_set, tuple(sorted(self.edges.items()))))

    # -- structure queries --------------------------------------------------------

    def edges_containing(self, vertex: str) -> list[str]:
        """Ids of edges containing ``vertex`` (in edge order)."""
        if vertex not in self._vertex_set:
            raise QueryError(f"unknown vertex {vertex!r}")
        return [eid for eid, e in self.edges.items() if vertex in e]

    def degree(self, vertex: str) -> int:
        """Number of edges containing ``vertex``."""
        return len(self.edges_containing(vertex))

    def covers_vertices(self) -> bool:
        """True when every vertex lies in at least one edge.

        A fractional edge cover exists iff this holds, so join algorithms
        require it.
        """
        covered: set[str] = set()
        for e in self.edges.values():
            covered |= e
        return covered == set(self._vertex_set)

    def is_graph(self) -> bool:
        """True when every edge has arity at most 2 (Section 7.1's class)."""
        return all(len(e) <= 2 for e in self.edges.values())

    def is_simple_graph(self) -> bool:
        """True for a graph with no duplicate arity-2 edges and no loops."""
        if not self.is_graph():
            return False
        seen: set[frozenset[str]] = set()
        for e in self.edges.values():
            if len(e) == 2:
                if e in seen:
                    return False
                seen.add(e)
        return True

    def is_lw_instance(self) -> bool:
        """True when ``E`` is exactly all (n-1)-subsets of ``V`` (Section 4).

        A Loomis-Whitney instance has ``n`` edges, one per omitted vertex.
        """
        n = len(self.vertices)
        if n < 2 or len(self.edges) != n:
            return False
        expected = {self._vertex_set - {v} for v in self.vertices}
        return set(self.edges.values()) == expected

    def restrict(self, vertices: Iterable[str]) -> "Hypergraph":
        """The trace hypergraph on a vertex subset.

        Each edge is intersected with the subset; empty traces are dropped.
        This is the ``H'`` construction used throughout Section 5.
        """
        keep = frozenset(vertices)
        unknown = keep - self._vertex_set
        if unknown:
            raise QueryError(f"unknown vertices {sorted(unknown)}")
        new_edges = {
            eid: e & keep for eid, e in self.edges.items() if e & keep
        }
        return Hypergraph(
            tuple(v for v in self.vertices if v in keep), new_edges
        )

    def subhypergraph(self, edge_ids: Iterable[str]) -> "Hypergraph":
        """Keep only the given edges (full vertex set retained)."""
        ids = list(edge_ids)
        for eid in ids:
            self.edge(eid)
        return Hypergraph(
            self.vertices, {eid: self.edges[eid] for eid in ids}
        )

    # -- graph-shape detection (for Section 7.1) ------------------------------------

    def connected_components(self) -> list["Hypergraph"]:
        """Split into connected components (vertices sharing no edge split).

        Isolated vertices (in no edge) each form their own edgeless
        component.
        """
        parent: dict[str, str] = {v: v for v in self.vertices}

        def find(v: str) -> str:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for e in self.edges.values():
            members = sorted(e)
            for other in members[1:]:
                union(members[0], other)
        groups: dict[str, list[str]] = {}
        for v in self.vertices:
            groups.setdefault(find(v), []).append(v)
        components = []
        for group in groups.values():
            group_set = set(group)
            edges = {
                eid: e for eid, e in self.edges.items() if e <= group_set and e
            }
            components.append(Hypergraph(tuple(group), edges))
        return components

    def is_cycle(self) -> list[str] | None:
        """If this (arity-2) hypergraph is a single cycle, return its
        vertices in cyclic order; else ``None``.

        Used by the Cycle Lemma (Lemma 7.1).  A 2-cycle (two parallel edges)
        and larger cycles all qualify; a single edge does not.
        """
        if not self.is_graph() or len(self.edges) < 2:
            return None
        if any(len(e) != 2 for e in self.edges.values()):
            return None
        if len(self.edges) != len(self.vertices):
            return None
        adjacency: dict[str, list[tuple[str, str]]] = {v: [] for v in self.vertices}
        for eid, e in self.edges.items():
            a, b = sorted(e)
            adjacency[a].append((b, eid))
            adjacency[b].append((a, eid))
        if any(len(neighbors) != 2 for neighbors in adjacency.values()):
            return None
        # Walk the cycle from an arbitrary start.
        start = self.vertices[0]
        order = [start]
        used_edges: set[str] = set()
        current = start
        while True:
            for neighbor, eid in adjacency[current]:
                if eid not in used_edges:
                    used_edges.add(eid)
                    current = neighbor
                    break
            else:
                return None
            if current == start:
                break
            order.append(current)
        if len(order) != len(self.vertices) or len(used_edges) != len(self.edges):
            return None
        return order

    def is_star(self) -> str | None:
        """If this (arity-<=2) hypergraph is a star, return its center.

        A star is a set of edges sharing one common vertex (a single edge or
        even a single loop/singleton counts, center chosen deterministically).
        Lemma 7.2 shows the weight-1 edges of a vertex LP solution form
        stars.
        """
        if not self.is_graph() or not self.edges:
            return None
        common = None
        for e in self.edges.values():
            common = set(e) if common is None else common & e
        if not common:
            return None
        return sorted(common)[0]


def lw_hypergraph(n: int, vertex_prefix: str = "A") -> Hypergraph:
    """The Loomis-Whitney hypergraph: all (n-1)-subsets of n attributes.

    Vertices are ``A1..An`` and edge ``Ri`` omits vertex ``Ai`` — the setup
    of Theorem 3.4 and Section 4.
    """
    if n < 2:
        raise QueryError(f"LW instances need n >= 2, got {n}")
    vertices = tuple(f"{vertex_prefix}{i}" for i in range(1, n + 1))
    edges = {
        f"R{i}": tuple(v for j, v in enumerate(vertices, start=1) if j != i)
        for i in range(1, n + 1)
    }
    return Hypergraph(vertices, edges)
