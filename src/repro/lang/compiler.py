"""Compiler: typed AST to the ``Q`` fluent builder, with positions.

Lowering is thin by design — every statement becomes exactly the
:class:`~repro.query.builder.Q` call chain a Python caller would write,
so the language adds zero execution paths: the same planner, the same
folds, the same sampler.  What the compiler adds is *checked names with
positions*: unknown relations and attributes, aggregate/``group by``
interplay, and sample misuse all raise
:class:`~repro.errors.CompileError` pointing a caret at the offending
clause, before anything executes.

:class:`CompiledQuery` is the executable artifact.  Its ``kind`` says
how to run it (``rows`` / ``aggregate`` / ``group`` / ``sample`` /
``explain`` / ``explain_analyze``), ``columns`` names the output, and
:meth:`CompiledQuery.run` produces a :class:`QueryResult` — against its
own builder by default, or against any object sharing the builder's
execution surface (a :class:`~repro.query.prepared.PreparedQuery`:
servers pass the cached prepared query so repeated text never replans).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError, QueryError
from repro.lang.nodes import Aggregate, Equals, InSet, Node, Star, Statement
from repro.lang.parser import parse
from repro.query.builder import Q, QueryBuilder
from repro.query.context import ExecutionContext

__all__ = ["CompiledQuery", "QueryResult", "compile_query"]


@dataclass(frozen=True)
class QueryResult:
    """One statement's result: named columns and row tuples.

    ``text`` is set instead of rows for ``explain`` statements (the
    plan description, or the measured ``EXPLAIN ANALYZE`` report).
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    text: str | None = None


#: ``(method name, needs attribute)`` per aggregate function.
_AGG_METHODS = {
    "count": ("count", False),
    "sum": ("sum", True),
    "min": ("min", True),
    "max": ("max", True),
    "avg": ("avg", True),
    "count_distinct": ("count_distinct", True),
}


@dataclass(frozen=True)
class CompiledQuery:
    """A statement lowered onto the builder, ready to execute."""

    statement: Statement
    builder: QueryBuilder
    kind: str
    columns: tuple[str, ...]

    @property
    def normalized(self) -> str:
        """The canonical statement text (the server's cache key)."""
        return self.statement.normalized

    def run(self, target: QueryBuilder | None = None) -> QueryResult:
        """Execute and materialize the result.

        ``target`` defaults to :attr:`builder`; passing a
        :class:`~repro.query.prepared.PreparedQuery` of the same builder
        runs the frozen plan instead (same results, zero replanning).
        """
        query = self.builder if target is None else target
        statement = self.statement
        if self.kind == "explain":
            return QueryResult(
                ("plan",), [], self.builder.plan().describe()
            )
        if self.kind == "explain_analyze":
            analysis = self.builder.explain(analyze=True)
            return QueryResult(("plan",), [], analysis.describe())
        if self.kind == "sample":
            rows = query.sample(statement.sample, seed=statement.sample_seed)
            return QueryResult(self.columns, list(rows))
        if self.kind == "aggregate":
            values = []
            for aggregate in statement.aggregates:
                method, takes_attr = _AGG_METHODS[aggregate.func]
                bound = getattr(query, method)
                values.append(
                    bound(aggregate.argument) if takes_attr else bound()
                )
            return QueryResult(self.columns, [tuple(values)])
        if self.kind == "group":
            keys = tuple(column.name for column in statement.group_by)
            spec = {
                aggregate.label: (
                    "count"
                    if aggregate.func == "count"
                    else (aggregate.func, aggregate.argument)
                )
                for aggregate in statement.aggregates
            }
            grouped = query.group_by(*keys).agg(**spec)
            labels = self.columns[len(keys):]
            rows = [
                key + tuple(values[label] for label in labels)
                for key, values in grouped.items()
            ]
            return QueryResult(self.columns, rows)
        return QueryResult(self.columns, list(query.stream()))


def _fail(node: Node, message: str, source: str) -> CompileError:
    return CompileError(
        message,
        source=source,
        line=node.line,
        column=node.column,
        length=node.length,
    )


def compile_query(
    source: str | Statement,
    database,
    context: ExecutionContext | None = None,
) -> CompiledQuery:
    """Compile one statement against a catalog.

    ``source`` is statement text (parsed here, so
    :class:`~repro.errors.ParseError` can also escape) or an
    already-parsed :class:`~repro.lang.nodes.Statement`.  ``database``
    is the :class:`~repro.relations.Database` naming the relations;
    ``context`` attaches execution options (algorithm, shards, tracer)
    and always gains ``database=database`` so catalogued indexes and
    statistics are shared.
    """
    statement = source if isinstance(source, Statement) else parse(source)
    text = statement.source or statement.normalized

    relations = []
    seen: set[str] = set()
    for ref in statement.relations:
        if ref.name in seen:
            raise _fail(
                ref,
                f"relation {ref.name!r} named twice in FROM (each "
                "relation joins once; self-joins need distinct names)",
                text,
            )
        seen.add(ref.name)
        if ref.name not in database:
            known = ", ".join(sorted(database.names())) or "none"
            raise _fail(
                ref,
                f"unknown relation {ref.name!r} (catalogued: {known})",
                text,
            )
        relations.append(database[ref.name])
    attributes: set[str] = set()
    for relation in relations:
        attributes.update(relation.attributes)

    def check_attribute(node: Node, name: str, what: str) -> None:
        if name not in attributes:
            known = ", ".join(
                sorted(attributes)
            ) or "none"
            raise _fail(
                node,
                f"{what} names unknown attribute {name!r} "
                f"(the join's attributes: {known})",
                text,
            )

    base_context = context if context is not None else ExecutionContext()
    builder = Q(*relations, context=base_context.replace(database=database))

    for condition in statement.conditions:
        check_attribute(condition, condition.attribute, "WHERE")
        try:
            if isinstance(condition, Equals):
                builder = builder.where(
                    **{condition.attribute: condition.value}
                )
            elif isinstance(condition, InSet):
                builder = builder.where_in(
                    condition.attribute, condition.values
                )
        except QueryError as error:
            raise _fail(condition, str(error), text) from error

    aggregates = statement.aggregates
    plain = statement.plain_columns
    for aggregate in aggregates:
        if aggregate.argument is not None:
            check_attribute(aggregate, aggregate.argument, aggregate.label)
    for column in plain:
        check_attribute(column, column.name, "SELECT")
    for key in statement.group_by:
        check_attribute(key, key.name, "GROUP BY")

    if statement.group_by:
        if not aggregates:
            raise _fail(
                statement.group_by[0],
                "GROUP BY needs at least one aggregate in the select "
                "list (for bare distinct keys, select the keys without "
                "GROUP BY)",
                text,
            )
        keys = {key.name for key in statement.group_by}
        for column in plain:
            if column.name not in keys:
                raise _fail(
                    column,
                    f"column {column.name!r} is neither aggregated nor "
                    "in GROUP BY",
                    text,
                )
        # Selected keys lead the output in select-list order; grouping
        # keys missing from the select list still group (SQL allows
        # this) but are appended so every key is visible in the output.
        ordered = [column.name for column in plain]
        ordered += [
            key.name for key in statement.group_by
            if key.name not in set(ordered)
        ]
        key_columns = tuple(ordered)
        if statement.sample is not None:
            raise _fail(
                statement,
                "SAMPLE does not combine with GROUP BY",
                text,
            )
        columns = key_columns + tuple(a.label for a in aggregates)
        # Re-order the grouping keys to the output order.
        from dataclasses import replace as _replace

        rebuilt = _replace(
            statement,
            group_by=tuple(
                next(k for k in statement.group_by if k.name == name)
                for name in key_columns
            ),
        )
        kind = "group"
        return _finish(rebuilt, builder, kind, columns)

    if aggregates:
        if plain:
            raise _fail(
                plain[0],
                f"column {plain[0].name!r} is not aggregated; mixing "
                "plain columns with aggregates requires GROUP BY",
                text,
            )
        if statement.sample is not None:
            raise _fail(
                statement,
                "SAMPLE does not combine with aggregates (it samples "
                "result rows)",
                text,
            )
        columns = tuple(a.label for a in aggregates)
        return _finish(statement, builder, "aggregate", columns)

    if not isinstance(statement.select, Star):
        try:
            builder = builder.select(
                *(column.name for column in plain)
            )
        except QueryError as error:
            raise _fail(plain[0], str(error), text) from error
    columns = builder.output_attributes
    if statement.sample is not None:
        if statement.sample < 1:
            raise _fail(
                statement,
                f"SAMPLE needs a positive row count, got "
                f"{statement.sample}",
                text,
            )
        return _finish(statement, builder, "sample", columns)
    return _finish(statement, builder, "rows", columns)


def _finish(
    statement: Statement,
    builder: QueryBuilder,
    kind: str,
    columns: tuple[str, ...],
) -> CompiledQuery:
    if statement.explain:
        kind = "explain_analyze" if statement.analyze else "explain"
    return CompiledQuery(statement, builder, kind, columns)
