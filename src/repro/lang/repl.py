"""The interactive shell: ``python -m repro repl R.csv S.csv ...``.

A line-oriented read-eval-print loop over a catalog of CSV-loaded
relations.  Statements end with ``;`` and may span lines (the prompt
switches to a continuation marker until the statement completes);
results render as psql-style tables with a ``(N rows)`` trailer; parse
and compile errors print caret diagnostics and never kill the session.

Meta-commands (backslash-prefixed, like psql):

``\\d``
    List the catalogued relations with arity and row counts.
``\\timing``
    Toggle per-statement wall-time reporting (``Time: 1.234 ms``).
``\\help``
    Grammar and meta-command summary.
``\\q``
    Quit (end-of-input quits too).

The loop is I/O-parameterized (any text streams), so golden tests
drive it with ``StringIO`` exactly as a terminal would.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.errors import LangError, QueryError
from repro.lang.compiler import QueryResult, compile_query
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_statements
from repro.query.context import ExecutionContext
from repro.relations.database import Database

__all__ = ["Repl", "render_table"]

_HELP = """\
Statements (end with ';'; keywords are case-insensitive):
  select A, C from R, S where A = 1 and B in (2, 3);
  select count(*), avg(B) from R, S;
  select A, count(distinct C) from R, S group by A;
  select * from R, S sample 5 seed 7;
  explain [analyze] select * from R, S;
Meta-commands:
  \\d        list relations        \\timing   toggle timing
  \\help     this help             \\q        quit
"""


def render_table(columns, rows) -> str:
    """psql-style table text: centered-ish header, aligned cells,
    ``(N rows)`` trailer.

    >>> print(render_table(("A", "B"), [(1, 10), (2, 200)]))
     A | B
    ---+-----
     1 | 10
     2 | 200
    (2 rows)
    """
    columns = tuple(str(c) for c in columns)
    cells = [tuple("" if v is None else str(v) for v in row) for row in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = [
        (" " + " | ".join(c.ljust(w) for c, w in zip(columns, widths))).rstrip()
    ]
    lines.append("+".join("-" * (w + 2) for w in widths))
    for row in cells:
        lines.append(
            (" " + " | ".join(v.ljust(w) for v, w in zip(row, widths))).rstrip()
        )
    trailer = "(1 row)" if len(cells) == 1 else f"({len(cells)} rows)"
    lines.append(trailer)
    return "\n".join(lines)


def _complete(buffer: str) -> bool:
    """Whether ``buffer`` ends with a statement terminator (tokenizing
    so a ``;`` inside a string literal does not count).  A buffer that
    does not yet tokenize (unterminated string mid-entry) is simply
    incomplete."""
    try:
        tokens = tokenize(buffer)
    except LangError:
        return False
    meaningful = [t for t in tokens if t.type != "eof"]
    return bool(meaningful) and (
        meaningful[-1].type == "punct" and meaningful[-1].value == ";"
    )


class Repl:
    """The loop object: a catalog plus I/O streams and settings."""

    def __init__(
        self,
        database: Database,
        *,
        input_stream: TextIO | None = None,
        output_stream: TextIO | None = None,
        context: ExecutionContext | None = None,
        interactive: bool | None = None,
    ) -> None:
        self.database = database
        self.input = input_stream if input_stream is not None else sys.stdin
        self.output = (
            output_stream if output_stream is not None else sys.stdout
        )
        self.context = context
        self.timing = False
        # Prompts print only on a terminal; piped input (tests, scripts)
        # sees clean output.
        self.interactive = (
            interactive
            if interactive is not None
            else getattr(self.input, "isatty", lambda: False)()
        )

    # -- output helpers ------------------------------------------------------

    def write(self, text: str = "") -> None:
        print(text, file=self.output)

    def prompt(self, continuation: bool) -> None:
        if self.interactive:
            marker = "   ...> " if continuation else "repro> "
            self.output.write(marker)
            self.output.flush()

    # -- meta-commands -------------------------------------------------------

    def meta(self, command: str) -> bool:
        """Run one backslash command; False means quit."""
        word = command.split()[0]
        if word == "\\q":
            return False
        if word == "\\d":
            if not len(self.database):
                self.write("(no relations)")
                return True
            rows = [
                (
                    relation.name,
                    ", ".join(relation.attributes),
                    len(relation),
                )
                for relation in self.database
            ]
            self.write(render_table(("name", "attributes", "rows"), rows))
            return True
        if word == "\\timing":
            self.timing = not self.timing
            self.write(
                f"Timing is {'on' if self.timing else 'off'}."
            )
            return True
        if word == "\\help":
            self.output.write(_HELP)
            return True
        self.write(f"unknown meta-command {word} (try \\help)")
        return True

    # -- statements ----------------------------------------------------------

    def execute(self, text: str) -> None:
        """Parse, compile, and run every statement in ``text``."""
        try:
            statements = parse_statements(text)
        except LangError as error:
            self.write(error.caret_diagnostic())
            return
        for statement in statements:
            started = time.perf_counter()
            try:
                compiled = compile_query(
                    statement, self.database, self.context
                )
                result = compiled.run()
            except LangError as error:
                self.write(error.caret_diagnostic())
                continue
            except QueryError as error:
                self.write(f"query error: {error}")
                continue
            self.show(result)
            if self.timing:
                elapsed = (time.perf_counter() - started) * 1000.0
                self.write(f"Time: {elapsed:.3f} ms")

    def show(self, result: QueryResult) -> None:
        if result.text is not None:
            self.write(result.text)
            return
        self.write(render_table(result.columns, result.rows))

    # -- the loop ------------------------------------------------------------

    def run(self) -> int:
        """Read until end-of-input or ``\\q``; returns an exit status."""
        if self.interactive:
            self.write(
                f"repro repl — {len(self.database)} relation(s) "
                "catalogued; \\help for help, \\q to quit."
            )
        buffer = ""
        self.prompt(continuation=False)
        for line in self.input:
            stripped = line.strip()
            if stripped.startswith("\\"):
                # Meta-commands run even mid-statement (psql behavior);
                # the statement buffer survives them.
                if not self.meta(stripped):
                    return 0
                self.prompt(continuation=bool(buffer.strip()))
                continue
            buffer += line
            if _complete(buffer):
                self.execute(buffer)
                buffer = ""
            self.prompt(continuation=bool(buffer.strip()))
        if buffer.strip():
            # A trailing statement without ';' still runs at EOF.
            self.execute(buffer)
        return 0
