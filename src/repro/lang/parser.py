"""Recursive-descent parser: tokens to the typed AST.

The grammar (keywords case-insensitive, identifiers case-sensitive,
statements ``;``-terminated — the final ``;`` may be omitted for the
last statement of an input)::

    statement   := [EXPLAIN [ANALYZE]] SELECT select_list
                   FROM ident (',' ident)*
                   [WHERE cond (AND cond)*]
                   [GROUP BY ident (',' ident)*]
                   [SAMPLE int [SEED int]]
    select_list := '*' | item (',' item)*
    item        := ident
                 | COUNT '(' ('*' | DISTINCT ident) ')'
                 | COUNT_DISTINCT '(' ident ')'
                 | (SUM | MIN | MAX | AVG) '(' ident ')'
    cond        := ident '=' literal
                 | ident IN '(' literal (',' literal)* ')'
    literal     := ['-'] int | string

Structural rules the parser enforces (so they fail with a position,
before any catalog is consulted): ``*`` cannot mix with other select
items, and ``sample``'s count is a literal integer.  Semantic rules —
unknown names, aggregate/``group by`` interplay — live in
:mod:`repro.lang.compiler`.

:func:`normalize` re-serializes the token stream one statement at a
time (keywords lowercased, single spacing, no trailing ``;``), giving
the canonical text servers key their prepared-query caches on.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.lexer import Token, tokenize
from repro.lang.nodes import (
    Aggregate,
    Column,
    Condition,
    Equals,
    InSet,
    RelationRef,
    SelectItem,
    Star,
    Statement,
)

__all__ = ["Parser", "normalize", "parse", "parse_statements"]

_AGG_FUNCS = ("count", "sum", "min", "max", "avg", "count_distinct")


class Parser:
    """One pass over a token list; builds :class:`Statement` nodes."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type != "eof":
            self.position += 1
        return token

    def error(self, message: str, token: Token | None = None) -> ParseError:
        token = token if token is not None else self.current
        return ParseError(
            message,
            source=self.source,
            line=token.line,
            column=token.column,
            length=token.length,
        )

    def at_keyword(self, *words: str) -> bool:
        token = self.current
        return token.type == "keyword" and token.value in words

    def at_punct(self, char: str) -> bool:
        token = self.current
        return token.type == "punct" and token.value == char

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise self.error(
                f"expected {word.upper()}, got {self.current.describe()}"
            )
        return self.advance()

    def expect_punct(self, char: str) -> Token:
        if not self.at_punct(char):
            raise self.error(
                f"expected {char!r}, got {self.current.describe()}"
            )
        return self.advance()

    def expect_ident(self, what: str) -> Token:
        token = self.current
        if token.type != "ident":
            if token.type == "keyword":
                raise self.error(
                    f"expected {what}, got reserved word {token.text!r}"
                )
            raise self.error(f"expected {what}, got {token.describe()}")
        return self.advance()

    # -- productions ---------------------------------------------------------

    def parse_statements(self) -> list[Statement]:
        statements = []
        while self.current.type != "eof":
            if self.at_punct(";"):  # empty statement: skip
                self.advance()
                continue
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        start = self.position
        first = self.current
        explain = analyze = False
        if self.at_keyword("explain"):
            explain = True
            self.advance()
            if self.at_keyword("analyze"):
                analyze = True
                self.advance()
        self.expect_keyword("select")
        select = self.parse_select_list()
        self.expect_keyword("from")
        relations = self.parse_relation_list()
        conditions: tuple[Condition, ...] = ()
        if self.at_keyword("where"):
            self.advance()
            conditions = self.parse_conditions()
        group_by: tuple[Column, ...] = ()
        if self.at_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            group_by = self.parse_group_keys()
        sample = sample_seed = None
        if self.at_keyword("sample"):
            self.advance()
            sample_token = self.advance()
            if sample_token.type != "int":
                raise self.error(
                    "expected a literal row count after SAMPLE, got "
                    f"{sample_token.describe()}",
                    sample_token,
                )
            sample = sample_token.value
            if self.at_keyword("seed"):
                self.advance()
                seed_token = self.advance()
                if seed_token.type != "int":
                    raise self.error(
                        "expected a literal integer after SEED, got "
                        f"{seed_token.describe()}",
                        seed_token,
                    )
                sample_seed = seed_token.value
        if self.at_punct(";"):
            self.advance()
        elif self.current.type != "eof":
            raise self.error(
                f"expected ';' or end of input, got {self.current.describe()}"
            )
        end = self.position
        return Statement(
            line=first.line,
            column=first.column,
            length=first.length,
            select=select,
            relations=relations,
            conditions=conditions,
            group_by=group_by,
            sample=sample,
            sample_seed=sample_seed,
            explain=explain,
            analyze=analyze,
            normalized=_render(self.tokens[start:end]),
            source=self.source,
        )

    def parse_select_list(self) -> tuple[SelectItem, ...] | Star:
        if self.at_punct("*"):
            token = self.advance()
            if self.at_punct(","):
                raise self.error(
                    "'*' selects everything; it cannot mix with other "
                    "select items"
                )
            return Star(token.line, token.column, token.length)
        items: list[SelectItem] = [self.parse_select_item()]
        while self.at_punct(","):
            self.advance()
            items.append(self.parse_select_item())
        return tuple(items)

    def parse_select_item(self) -> SelectItem:
        token = self.current
        if token.type == "keyword" and token.value in _AGG_FUNCS:
            return self.parse_aggregate()
        if token.type == "punct" and token.value == "*":
            raise self.error(
                "'*' selects everything; it cannot mix with other "
                "select items"
            )
        name = self.expect_ident("an attribute name")
        return Column(name.line, name.column, name.length, name.value)

    def parse_aggregate(self) -> Aggregate:
        func_token = self.advance()
        func = func_token.value
        self.expect_punct("(")
        argument: str | None = None
        if func == "count":
            if self.at_punct("*"):
                self.advance()
            elif self.at_keyword("distinct"):
                self.advance()
                argument = self.expect_ident("an attribute name").value
                func = "count_distinct"
            else:
                raise self.error(
                    "expected '*' or DISTINCT inside COUNT(...), got "
                    f"{self.current.describe()}"
                )
        else:
            argument = self.expect_ident("an attribute name").value
        self.expect_punct(")")
        return Aggregate(
            func_token.line,
            func_token.column,
            func_token.length,
            func,
            argument,
        )

    def parse_relation_list(self) -> tuple[RelationRef, ...]:
        refs = [self.parse_relation_ref()]
        while self.at_punct(","):
            self.advance()
            refs.append(self.parse_relation_ref())
        return tuple(refs)

    def parse_relation_ref(self) -> RelationRef:
        name = self.expect_ident("a relation name")
        return RelationRef(name.line, name.column, name.length, name.value)

    def parse_conditions(self) -> tuple[Condition, ...]:
        conditions = [self.parse_condition()]
        while self.at_keyword("and"):
            self.advance()
            conditions.append(self.parse_condition())
        return tuple(conditions)

    def parse_condition(self) -> Condition:
        attribute = self.expect_ident("an attribute name")
        if self.at_punct("="):
            self.advance()
            value = self.parse_literal()
            return Equals(
                attribute.line,
                attribute.column,
                attribute.length,
                attribute.value,
                value,
            )
        if self.at_keyword("in"):
            self.advance()
            self.expect_punct("(")
            values = [self.parse_literal()]
            while self.at_punct(","):
                self.advance()
                values.append(self.parse_literal())
            self.expect_punct(")")
            return InSet(
                attribute.line,
                attribute.column,
                attribute.length,
                attribute.value,
                tuple(values),
            )
        raise self.error(
            f"expected '=' or IN after {attribute.text!r}, got "
            f"{self.current.describe()}"
        )

    def parse_literal(self):
        token = self.current
        if token.type == "punct" and token.value == "-":
            self.advance()
            number = self.advance()
            if number.type != "int":
                raise self.error(
                    f"expected an integer after '-', got {number.describe()}",
                    number,
                )
            return -number.value
        if token.type in ("int", "string"):
            return self.advance().value
        raise self.error(
            "expected a literal (integer or 'string'), got "
            f"{token.describe()}"
        )

    def parse_group_keys(self) -> tuple[Column, ...]:
        keys = [self.expect_ident("a grouping attribute")]
        while self.at_punct(","):
            self.advance()
            keys.append(self.expect_ident("a grouping attribute"))
        return tuple(
            Column(t.line, t.column, t.length, t.value) for t in keys
        )


#: Punctuation that binds tightly to its neighbours when re-rendering.
_NO_SPACE_BEFORE = frozenset({",", ")", ";"})
_NO_SPACE_AFTER = frozenset({"(", "-"})


def _render(tokens: list[Token]) -> str:
    """Canonical single-line text for a token slice.

    Keywords lowercased, identifiers verbatim, literals re-serialized,
    single spaces except around grouping punctuation, trailing ``;``
    dropped — whitespace, case, and comment differences normalize away
    while distinct queries stay distinct.
    """
    parts: list[str] = []
    previous: Token | None = None
    for token in tokens:
        if token.type == "eof" or (
            token.type == "punct" and token.value == ";"
        ):
            continue
        if token.type == "keyword":
            text = token.value
        elif token.type == "string":
            text = "'" + str(token.value).replace("'", "''") + "'"
        elif token.type == "int":
            text = str(token.value)
        else:
            text = token.text
        if previous is not None and not (
            (token.type == "punct" and token.value in _NO_SPACE_BEFORE)
            or (
                previous.type == "punct"
                and previous.value in _NO_SPACE_AFTER
            )
            or (
                # Aggregate calls render tight: count(*), avg(B).
                token.type == "punct"
                and token.value == "("
                and previous.type == "keyword"
                and previous.value in _AGG_FUNCS
            )
        ):
            parts.append(" ")
        parts.append(text)
        previous = token
    return "".join(parts)


def parse_statements(source: str) -> list[Statement]:
    """Parse ``source`` into a list of statements (may be empty)."""
    return Parser(tokenize(source), source).parse_statements()


def parse(source: str) -> Statement:
    """Parse exactly one statement (trailing ``;`` optional).

    Raises :class:`~repro.errors.ParseError` when ``source`` holds no
    statement or more than one.
    """
    statements = parse_statements(source)
    if not statements:
        raise ParseError("no statement in input", source=source)
    if len(statements) > 1:
        second = statements[1]
        raise ParseError(
            "expected one statement, found "
            f"{len(statements)} (split on ';' and parse each)",
            source=source,
            line=second.line,
            column=second.column,
            length=second.length,
        )
    return statements[0]


def normalize(source: str) -> str:
    """The canonical text of one statement — the server's cache key.

    >>> normalize("SELECT  *\\n FROM R ;")
    'select * from R'
    """
    return parse(source).normalized
