"""Typed AST for the query language.

Every node records the 1-based ``line`` / ``column`` of the token that
introduced it (plus a ``length`` in characters), so the compiler can
point caret diagnostics at the exact clause that failed — an unknown
relation name underlines that name, not the whole statement.

The AST is deliberately close to the grammar: one :class:`Statement`
per ``;``-terminated sentence, holding the select list (a
:class:`Star` or :class:`Column` / :class:`Aggregate` items), the
:class:`RelationRef` list, ``where`` conditions (:class:`Equals` /
:class:`InSet`), optional ``group by`` keys, and the optional
``sample`` clause.  Lowering onto the ``Q`` builder lives in
:mod:`repro.lang.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Aggregate",
    "Column",
    "Condition",
    "Equals",
    "InSet",
    "Node",
    "RelationRef",
    "SelectItem",
    "Star",
    "Statement",
]


@dataclass(frozen=True)
class Node:
    """Base node: a source position for diagnostics.

    Positions are metadata, not structure — two nodes parsed from
    differently-spelled but equivalent text compare equal (this is what
    makes ``parse(normalize(text)) == parse(text)`` hold).
    """

    line: int = field(compare=False)
    column: int = field(compare=False)
    length: int = field(default=1, compare=False)


@dataclass(frozen=True)
class Star(Node):
    """``select *`` — the full output schema, no projection."""


@dataclass(frozen=True)
class Column(Node):
    """A plain attribute in the select list (or a group-by key)."""

    name: str = ""


@dataclass(frozen=True)
class Aggregate(Node):
    """An aggregate call: ``count(*)``, ``sum(B)``, ``count(distinct C)``.

    ``func`` is one of ``count`` / ``sum`` / ``min`` / ``max`` / ``avg``
    / ``count_distinct``; ``argument`` is the attribute name (``None``
    only for ``count(*)``).
    """

    func: str = "count"
    argument: str | None = None

    @property
    def label(self) -> str:
        """The output column label, e.g. ``count(*)`` or ``avg(B)``."""
        if self.func == "count" and self.argument is None:
            return "count(*)"
        if self.func == "count_distinct":
            return f"count(distinct {self.argument})"
        return f"{self.func}({self.argument})"


#: A select-list item is a plain column or an aggregate call.
SelectItem = Column | Aggregate


@dataclass(frozen=True)
class RelationRef(Node):
    """A relation named in the ``from`` clause."""

    name: str = ""


@dataclass(frozen=True)
class Equals(Node):
    """``attribute = literal`` — equality pushed into the plan."""

    attribute: str = ""
    value: object = None


@dataclass(frozen=True)
class InSet(Node):
    """``attribute in (v1, v2, ...)`` — a per-level membership filter."""

    attribute: str = ""
    values: tuple = ()


#: A where-clause condition.
Condition = Equals | InSet


@dataclass(frozen=True)
class Statement(Node):
    """One parsed statement (the grammar's ``statement`` production)."""

    select: tuple[SelectItem, ...] | Star = ()
    relations: tuple[RelationRef, ...] = ()
    conditions: tuple[Condition, ...] = ()
    group_by: tuple[Column, ...] = ()
    sample: int | None = None
    sample_seed: int | None = None
    explain: bool = False
    analyze: bool = False
    #: The normalized statement text (set by the parser); the cache key.
    normalized: str = field(default="", compare=False)
    #: The original source text (set by the parser), so compile errors
    #: can point carets at the characters the user actually typed.
    source: str = field(default="", compare=False)

    @property
    def aggregates(self) -> tuple[Aggregate, ...]:
        if isinstance(self.select, Star):
            return ()
        return tuple(
            item for item in self.select if isinstance(item, Aggregate)
        )

    @property
    def plain_columns(self) -> tuple[Column, ...]:
        if isinstance(self.select, Star):
            return ()
        return tuple(
            item for item in self.select if isinstance(item, Column)
        )
