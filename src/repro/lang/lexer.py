"""Hand-written lexer: query text to position-carrying tokens.

Keywords are case-insensitive and reserved; identifiers (relation and
attribute names) are case-sensitive, matching the Python API where
``Relation("R", ...)`` and an attribute ``"a"`` differ from ``"A"``.
Literals are integers and SQL-style single-quoted strings (``''``
escapes a quote).  ``--`` starts a comment running to end of line.

Every token records its 1-based line and column plus the raw lexeme, so
the parser and compiler can raise :class:`~repro.errors.ParseError` /
:class:`~repro.errors.CompileError` with caret diagnostics pointing at
the exact offending characters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["KEYWORDS", "Token", "tokenize"]

#: Reserved words (lowercased).  An identifier spelled like one of
#: these, in any case, lexes as a keyword token.
KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "group",
        "by",
        "sample",
        "seed",
        "in",
        "explain",
        "analyze",
        "distinct",
        "count",
        "sum",
        "min",
        "max",
        "avg",
        "count_distinct",
    }
)

#: Single-character punctuation tokens.
_PUNCT = frozenset("*,()=;-")


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position.

    ``type`` is ``"keyword"`` (``value`` lowercased), ``"ident"``,
    ``"int"`` (``value`` is the ``int``), ``"string"`` (``value`` is the
    unescaped text), ``"punct"`` (``value`` is the character), or
    ``"eof"``.  ``text`` is the raw lexeme as written; ``line`` /
    ``column`` are 1-based.
    """

    type: str
    value: object
    text: str
    line: int
    column: int

    @property
    def length(self) -> int:
        return max(1, len(self.text))

    def describe(self) -> str:
        """How the token reads in an error message."""
        if self.type == "eof":
            return "end of input"
        return repr(self.text)


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_part(char: str) -> bool:
    return char.isalnum() or char == "_"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into a token list ending with an ``eof`` token.

    Raises :class:`~repro.errors.ParseError` (with position) on an
    unexpected character or an unterminated string literal.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(source)
    while i < n:
        char = source[i]
        if char == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if char.isspace():
            i += 1
            column += 1
            continue
        if char == "-" and source[i + 1 : i + 2] == "-":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_line, start_column = line, column
        if _is_ident_start(char):
            j = i
            while j < n and _is_ident_part(source[j]):
                j += 1
            text = source[i:j]
            lowered = text.lower()
            if lowered in KEYWORDS:
                token = Token(
                    "keyword", lowered, text, start_line, start_column
                )
            else:
                token = Token("ident", text, text, start_line, start_column)
            tokens.append(token)
            column += j - i
            i = j
            continue
        if char.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            tokens.append(
                Token("int", int(text), text, start_line, start_column)
            )
            column += j - i
            i = j
            continue
        if char == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n or source[j] == "\n":
                    raise ParseError(
                        "unterminated string literal",
                        source=source,
                        line=start_line,
                        column=start_column,
                        length=j - i,
                    )
                if source[j] == "'":
                    if source[j + 1 : j + 2] == "'":  # '' escapes '
                        parts.append("'")
                        j += 2
                        continue
                    j += 1
                    break
                parts.append(source[j])
                j += 1
            text = source[i:j]
            tokens.append(
                Token(
                    "string", "".join(parts), text, start_line, start_column
                )
            )
            column += j - i
            i = j
            continue
        if char in _PUNCT:
            tokens.append(Token("punct", char, char, start_line, start_column))
            i += 1
            column += 1
            continue
        raise ParseError(
            f"unexpected character {char!r}",
            source=source,
            line=start_line,
            column=start_column,
        )
    tokens.append(Token("eof", None, "", line, column))
    return tokens
