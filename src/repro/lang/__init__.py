"""The query-language front-end: text -> tokens -> AST -> ``Q`` builder.

A deliberately small SQL-flavored language over catalogued relations::

    select A, C from R, S, T where A = 1 and B in (2, 3);
    select count(*), avg(B) from R, S;
    select A, count(distinct C) from R, S group by A;
    select * from R, S sample 5 seed 7;
    explain analyze select * from R, S, T;

The pipeline is classic and hand-written — :mod:`repro.lang.lexer`
produces position-carrying tokens, :mod:`repro.lang.parser` is a
recursive-descent parser over them building the typed AST of
:mod:`repro.lang.nodes`, and :mod:`repro.lang.compiler` lowers the AST
onto the existing :class:`~repro.query.builder.Q` fluent builder, so
every statement executes through exactly the code paths the Python API
exercises (same planner, same folds, same sampler).  Parse and compile
errors carry source positions and render caret diagnostics
(:class:`~repro.errors.ParseError` / :class:`~repro.errors.CompileError`).

:func:`normalize` canonicalizes statement text token-by-token; servers
use it as the prepared-query cache key so ``SELECT * FROM R;`` and
``select  *  from R ;`` share one plan and one set of indexes.
"""

from repro.errors import CompileError, LangError, ParseError
from repro.lang.compiler import CompiledQuery, QueryResult, compile_query
from repro.lang.lexer import Token, tokenize
from repro.lang.nodes import (
    Aggregate,
    Column,
    Condition,
    Equals,
    InSet,
    RelationRef,
    SelectItem,
    Star,
    Statement,
)
from repro.lang.parser import normalize, parse, parse_statements
from repro.lang.repl import Repl

__all__ = [
    "Aggregate",
    "Column",
    "CompileError",
    "CompiledQuery",
    "Condition",
    "Equals",
    "InSet",
    "LangError",
    "ParseError",
    "QueryResult",
    "RelationRef",
    "Repl",
    "SelectItem",
    "Star",
    "Statement",
    "Token",
    "compile_query",
    "normalize",
    "parse",
    "parse_statements",
    "tokenize",
]
