"""The IndexBackend protocol: one index interface, pluggable storage.

Section 5.3.2 of the paper specifies what a join executor needs from its
per-relation indexes — the search-tree properties (ST1) prefix walking,
(ST2) projected-section counting, and (ST3) output-linear enumeration.
:class:`IndexBackend` captures that contract as a structural protocol so
executors are written once and run over any conforming storage layout.

Three implementations ship with the engine, all cached uniformly by
:class:`~repro.relations.database.Database` under (kind, relation, order)
keys:

``"trie"``
    :class:`~repro.relations.trie.TrieIndex` — nested hash dictionaries,
    the paper's own Section 5.1 hashing model: O(1) child lookups and a
    precomputed (ST2) counts vector.  Best for NPRR's count-driven
    per-tuple case analysis.
``"sorted"``
    :class:`~repro.relations.sorted_index.SortedArrayIndex` — one flat
    lexicographically sorted tuple array, the layout of Leapfrog Triejoin
    (Veldhuizen, ICDT 2014) and of "Worst-Case Optimal Radix Triejoin"
    (Fekete et al.).  Lookups pay a log factor (footnote 3 of the paper)
    but the array sorts once, caches cheaply, and hands out the
    ``open/up/next/seek`` cursors the leapfrog intersection needs.
``"compact"``
    :class:`~repro.engine.compact.CompactArrayIndex` — each trie level
    packed into one contiguous ``array('q')`` value run plus child-offset
    arrays (a CSR trie, no per-node objects).  Probes gallop from the
    last hit or, on dense integer runs, radix-index directly; leapfrog
    cursors work too.  The leanest resident footprint (8 bytes per
    distinct prefix per level, measured exactly by ``nbytes()``).

Executors that only navigate (Generic Join) accept any backend; the
planner (:mod:`repro.engine.planner`) picks per algorithm and — for
Generic Join — per relation, from skew and density statistics.

Registration note: ``CompactArrayIndex`` lives in the engine layer (it
is the engine's performance backend, not a relations primitive), so it
is registered into :data:`INDEX_BACKENDS` here rather than in
:mod:`repro.relations.database` — importing this module (which any
``import repro`` does) makes ``"compact"`` available everywhere,
including :func:`build_index` and the ``Database`` cache.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any, Protocol, runtime_checkable

from repro.engine.compact import CompactArrayIndex, CompactTrieIterator
from repro.errors import DatabaseError
from repro.relations.database import (
    DEFAULT_BACKEND,
    INDEX_BACKENDS,
    build_index,
)
from repro.relations.relation import Row, Value
from repro.relations.sorted_index import SortedArrayIndex, SortedTrieIterator
from repro.relations.trie import TrieIndex

__all__ = [
    "DEFAULT_BACKEND",
    "INDEX_BACKENDS",
    "CompactArrayIndex",
    "CompactTrieIterator",
    "IndexBackend",
    "SortedArrayIndex",
    "SortedTrieIterator",
    "TrieIndex",
    "backend_kinds",
    "build_index",
    "validate_backend",
]

# The compact backend registers here (see the module docstring): the
# registry dict itself lives in repro.relations.database, and this
# mutation is visible to build_index and every Database instance.
INDEX_BACKENDS.setdefault(CompactArrayIndex.kind, CompactArrayIndex)


@runtime_checkable
class IndexBackend(Protocol):
    """What a join executor may assume about a per-relation index.

    A *node* is backend-defined and opaque (a ``TrieNode`` pointer for the
    hash trie, a ``(lo, hi, depth)`` row range for the sorted array); the
    methods below are the only way executors touch one.  ``None`` always
    denotes a failed walk and is accepted everywhere a node is.
    """

    #: Registry key of this backend ("trie", "sorted", ...).
    kind: str

    #: The index's level order (a permutation of the relation's schema).
    attributes: tuple[str, ...]

    @property
    def root(self) -> Any:
        """The node every walk starts from (the empty prefix)."""

    def __len__(self) -> int:
        """Number of indexed tuples."""

    # (ST1) — prefix membership in O(prefix) steps.
    def walk(self, prefix: Iterable[Value]) -> Any | None:
        """The node reached from :attr:`root` by following ``prefix``
        values level by level, or ``None`` if no indexed tuple starts
        with that prefix.  Cost is O(len(prefix)) lookups — the paper's
        (ST1) search-tree property."""

    def descend(self, node: Any, values: Iterable[Value]) -> Any | None:
        """Like :meth:`walk`, but starting from an arbitrary ``node``
        instead of the root (``None`` nodes propagate to ``None``)."""

    def child(self, node: Any, value: Value) -> Any | None:
        """The single-step descent: the child of ``node`` along
        ``value``, or ``None`` when no indexed tuple extends the node's
        prefix with that value.  The executors' inner-loop probe."""

    # (ST2) — projected-section cardinality.
    def count(self, node: Any, depth: int) -> int:
        """How many *distinct* length-``depth`` paths continue below
        ``node`` — ``|pi_{next depth attrs}(R[prefix])|``, the paper's
        (ST2) property, which NPRR's per-tuple case analysis queries on
        every split.  The hash trie answers from a precomputed vector in
        O(1); the sorted backend gallops per distinct path."""

    def fanout(self, node: Any) -> int:
        """Number of immediate children of ``node`` (= ``count(node, 1)``);
        0 for ``None`` or a leaf."""

    def fanout_hint(self, node: Any) -> int:
        """O(1) upper bound on ``fanout`` for smallest-first ranking.

        Exact for the hash trie; the sorted backend returns its row-range
        width (an over-count) rather than pay a scan, which is enough to
        pick the smallest intersection operand heuristically."""

    # (ST3) — output-linear enumeration.
    def items(self, node: Any) -> Iterator[tuple[Value, Any]]:
        """Iterate ``(value, child node)`` pairs below ``node``, in the
        backend's native order (hash order for tries, sorted order for
        flat arrays).  Executors must not rely on the order."""

    def paths(self, node: Any, depth: int) -> Iterator[Row]:
        """Enumerate every distinct ``depth``-level path below ``node``
        as a tuple, in time linear in the number of paths emitted — the
        paper's (ST3) output-linear enumeration property."""


def backend_kinds() -> tuple[str, ...]:
    """Names of every registered index backend."""
    return tuple(INDEX_BACKENDS)


def validate_backend(kind: str) -> str:
    """Return ``kind`` if registered, else raise ``DatabaseError``."""
    if kind not in INDEX_BACKENDS:
        raise DatabaseError(
            f"unknown index backend {kind!r}; choose one of {backend_kinds()}"
        )
    return kind


