"""The unified streaming join engine: planner, backends, executors.

This subsystem is the single interface every scaling feature targets
(ROADMAP: caching, batching, streaming, sharding, multi-backend), layered
over the paper's machinery:

* :mod:`repro.engine.backends` — the :class:`IndexBackend` protocol
  (Section 5.3.2's (ST1)-(ST3) search-tree contract) with hash-trie and
  sorted flat-array implementations, cached uniformly in
  :class:`~repro.relations.database.Database`;
* :mod:`repro.engine.planner` — cost-based selection of algorithm,
  attribute order, and backend, yielding an inspectable
  :class:`JoinPlan` with the query's AGM bound (Section 2) attached;
* :mod:`repro.engine.executors` — the registry putting all five join
  algorithms behind one ``iter_join() / execute()`` streaming interface.

The planner's data-awareness (relation profiles, heavy-hitter skew
detection, sampled conditional selectivities) lives in
:mod:`repro.stats` and is cached per :class:`Database`.
"""

from repro.engine.backends import (
    DEFAULT_BACKEND,
    INDEX_BACKENDS,
    IndexBackend,
    backend_kinds,
    build_index,
    validate_backend,
)
from repro.engine.executors import EXECUTORS, algorithm_names, build_executor
from repro.engine.parallel import (
    DEFAULT_BATCH_SIZE,
    SHARD_MODES,
    ShardJob,
    ShardSlice,
    aiter_join,
    batches,
    iter_shard_rows,
    plan_shards,
    shard_join,
    shard_query,
)
from repro.engine.planner import (
    JoinPlan,
    attribute_statistics,
    plan_attribute_order,
    plan_attribute_order_feedback,
    plan_attribute_order_sampled,
    plan_join,
)

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_BATCH_SIZE",
    "EXECUTORS",
    "INDEX_BACKENDS",
    "IndexBackend",
    "JoinPlan",
    "SHARD_MODES",
    "ShardJob",
    "ShardSlice",
    "aiter_join",
    "algorithm_names",
    "attribute_statistics",
    "backend_kinds",
    "batches",
    "build_executor",
    "build_index",
    "iter_shard_rows",
    "plan_attribute_order",
    "plan_attribute_order_feedback",
    "plan_attribute_order_sampled",
    "plan_join",
    "plan_shards",
    "shard_join",
    "shard_query",
    "validate_backend",
]
