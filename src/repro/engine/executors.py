"""Executor registry: every join algorithm behind one streaming interface.

The engine treats an executor as anything with two methods:

* ``iter_join() -> Iterator[Row]`` — stream result rows in the query's
  attribute order, without materializing the output;
* ``execute(name) -> Relation`` — the thin materializing wrapper.

All five algorithms of this reproduction conform: Algorithm 2 / NPRR
(Section 5 of the paper), Algorithm 1 / LW (Section 4), Theorem 7.3's
arity-2 decomposition (Section 7.1), and the two successor WCOJ
algorithms, Generic Join ("Skew Strikes Back") and Leapfrog Triejoin
(Veldhuizen).  :data:`EXECUTORS` maps each public algorithm name to a
factory with a uniform keyword signature; it is the single source of
truth consumed by :data:`repro.api.ALGORITHMS` and the CLI's
``--algorithm`` choices, so adding an algorithm here surfaces it
everywhere at once.

**Residual filters.**  The query layer (:mod:`repro.query`) pushes
single-attribute selection predicates down to the executors.  The
attribute-at-a-time executors in :data:`NATIVE_FILTERS` evaluate them at
the level that binds the attribute, pruning subtrees; the blocking
specialists (``lw``, ``arity2``, ``nprr``) are wrapped in
:class:`RowFilterExecutor`, which applies the same predicates to emitted
rows — identical semantics, no early pruning.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.arity_two import ArityTwoJoin
from repro.core.filters import per_position_filters
from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import CURSOR_BACKENDS, LeapfrogTriejoin
from repro.core.lw import LWJoin
from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.covers import FractionalCover
from repro.relations.database import DEFAULT_BACKEND, Database
from repro.relations.relation import Relation, Row, Value
from repro.relations.sorted_index import SortedArrayIndex

__all__ = [
    "EXECUTORS",
    "NATIVE_FILTERS",
    "NATIVE_FOLD",
    "NATIVE_TELEMETRY",
    "RowFilterExecutor",
    "algorithm_names",
    "build_executor",
]

#: Filter predicates as the query layer hands them down: one
#: single-value test per filtered attribute.
Filters = Mapping[str, Callable[[Value], bool]]


class RowFilterExecutor:
    """Adapts residual filters onto an executor without native support.

    Wraps any executor conforming to the streaming protocol; rows whose
    filtered attributes fail their predicates are dropped from the
    stream.  Used for the blocking specialists, whose internal search
    structure (QP-trees, LW partitioning, arity-2 decomposition) has no
    single global per-attribute level to hook.
    """

    def __init__(self, inner, query: JoinQuery, filters: Filters) -> None:
        self._inner = inner
        self.query = query
        slots = per_position_filters(
            filters, query.attributes, query.attributes
        )
        self._checks = tuple(
            (position, predicate)
            for position, predicate in enumerate(slots)
            if predicate is not None
        )

    def iter_join(self):
        checks = self._checks
        for row in self._inner.iter_join():
            if all(predicate(row[i]) for i, predicate in checks):
                yield row

    def execute(self, name: str = "J") -> Relation:
        return Relation(name, self.query.attributes, self.iter_join())

    def __getattr__(self, attribute: str):
        # Observability passthrough (e.g. NPRRJoin.stats in benchmarks).
        return getattr(self._inner, attribute)


def _make_nprr(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
    filters: Filters | None,
    telemetry=None,
) -> NPRRJoin:
    # Algorithm 2's order comes from its query-plan tree; an explicit
    # attribute order does not apply, and the hash trie's O(1) (ST2)
    # counts are load-bearing for the per-tuple case analysis.
    return NPRRJoin(query, cover=cover, database=database)


def _make_lw(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
    filters: Filters | None,
    telemetry=None,
) -> LWJoin:
    return LWJoin(query)


def _make_generic(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str | Mapping[str, str],
    database: Database | None,
    filters: Filters | None,
    telemetry=None,
) -> GenericJoin:
    # ``backend`` may be a per-relation mapping (the statistics-driven
    # planner emits one when skew or cached indexes argue for mixing
    # kinds); GenericJoin accepts both spellings.
    return GenericJoin(
        query,
        attribute_order=attribute_order,
        database=database,
        backend=backend or DEFAULT_BACKEND,
        filters=filters,
        telemetry=telemetry,
    )


def _make_leapfrog(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
    filters: Filters | None,
    telemetry=None,
) -> LeapfrogTriejoin:
    # Leapfrog runs over any cursor-capable layout; non-cursor kinds
    # (the planner's "trie"/"mixed" labels) fall back to its native
    # sorted arrays.
    kind = (
        backend
        if isinstance(backend, str) and backend in CURSOR_BACKENDS
        else SortedArrayIndex.kind
    )
    return LeapfrogTriejoin(
        query,
        attribute_order=attribute_order,
        database=database,
        filters=filters,
        telemetry=telemetry,
        backend=kind,
    )


def _make_arity_two(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
    filters: Filters | None,
    telemetry=None,
) -> ArityTwoJoin:
    return ArityTwoJoin(query, cover=cover)


#: Algorithm name -> executor factory.  The single source of truth for
#: selectable algorithms: ``repro.api.ALGORITHMS`` and the CLI both
#: derive their choices from these keys (plus the planner's ``"auto"``).
EXECUTORS = {
    "nprr": _make_nprr,
    "lw": _make_lw,
    "generic": _make_generic,
    "leapfrog": _make_leapfrog,
    "arity2": _make_arity_two,
}

#: Algorithms whose executors evaluate residual filters *at the level
#: binding the attribute* (pruning subtrees).  Everything else is
#: wrapped in :class:`RowFilterExecutor` when filters are present.
NATIVE_FILTERS = frozenset({"generic", "leapfrog"})

#: Algorithms whose executors accept a per-level
#: :class:`~repro.feedback.telemetry.TelemetryProbe`.  The blocking
#: specialists have no global per-attribute levels to count, so the
#: feedback loop records nothing for them (their executions are still
#: parity-identical with feedback enabled).
NATIVE_TELEMETRY = frozenset({"generic", "leapfrog"})

#: Algorithms whose executors expose ``fold(folder)`` — aggregation
#: pushed into the level loops with factorized subtree pruning (see
#: :mod:`repro.aggregate.fold`).  Aggregates over the rest fold the
#: executor's row stream instead (same results, enumeration cost).
NATIVE_FOLD = frozenset({"generic", "leapfrog"})


def algorithm_names(include_auto: bool = True) -> tuple[str, ...]:
    """Public algorithm names, optionally with the planner's ``"auto"``."""
    names = tuple(EXECUTORS)
    return names + ("auto",) if include_auto else names


def build_executor(
    query: JoinQuery,
    algorithm: str,
    *,
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | Mapping[str, str] = DEFAULT_BACKEND,
    database: Database | None = None,
    filters: Filters | None = None,
    telemetry=None,
):
    """Instantiate the executor for a *resolved* algorithm name.

    ``algorithm`` must be a concrete name (``"auto"`` is resolved by the
    planner, not here).  Raises :class:`~repro.errors.QueryError` for an
    unknown name before touching any relation data.  ``filters`` attach
    the query layer's residual predicates — natively for the algorithms
    in :data:`NATIVE_FILTERS`, via :class:`RowFilterExecutor` otherwise.
    ``telemetry`` attaches a per-level probe to the algorithms in
    :data:`NATIVE_TELEMETRY` and is ignored for the rest.
    """
    try:
        factory = EXECUTORS[algorithm]
    except KeyError:
        raise QueryError(
            f"unknown algorithm {algorithm!r}; "
            f"choose one of {algorithm_names()}"
        ) from None
    native = filters if algorithm in NATIVE_FILTERS else None
    executor = factory(
        query,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        database=database,
        filters=native,
        telemetry=telemetry if algorithm in NATIVE_TELEMETRY else None,
    )
    if filters and algorithm not in NATIVE_FILTERS:
        executor = RowFilterExecutor(executor, query, filters)
    return executor
