"""Executor registry: every join algorithm behind one streaming interface.

The engine treats an executor as anything with two methods:

* ``iter_join() -> Iterator[Row]`` — stream result rows in the query's
  attribute order, without materializing the output;
* ``execute(name) -> Relation`` — the thin materializing wrapper.

All five algorithms of this reproduction conform: Algorithm 2 / NPRR
(Section 5 of the paper), Algorithm 1 / LW (Section 4), Theorem 7.3's
arity-2 decomposition (Section 7.1), and the two successor WCOJ
algorithms, Generic Join ("Skew Strikes Back") and Leapfrog Triejoin
(Veldhuizen).  :data:`EXECUTORS` maps each public algorithm name to a
factory with a uniform keyword signature; it is the single source of
truth consumed by :data:`repro.api.ALGORITHMS` and the CLI's
``--algorithm`` choices, so adding an algorithm here surfaces it
everywhere at once.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.arity_two import ArityTwoJoin
from repro.core.generic_join import GenericJoin
from repro.core.leapfrog import LeapfrogTriejoin
from repro.core.lw import LWJoin
from repro.core.nprr import NPRRJoin
from repro.core.query import JoinQuery
from repro.errors import QueryError
from repro.hypergraph.covers import FractionalCover
from repro.relations.database import DEFAULT_BACKEND, Database

__all__ = [
    "EXECUTORS",
    "algorithm_names",
    "build_executor",
]


def _make_nprr(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
) -> NPRRJoin:
    # Algorithm 2's order comes from its query-plan tree; an explicit
    # attribute order does not apply, and the hash trie's O(1) (ST2)
    # counts are load-bearing for the per-tuple case analysis.
    return NPRRJoin(query, cover=cover, database=database)


def _make_lw(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
) -> LWJoin:
    return LWJoin(query)


def _make_generic(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str | Mapping[str, str],
    database: Database | None,
) -> GenericJoin:
    # ``backend`` may be a per-relation mapping (the statistics-driven
    # planner emits one when skew or cached indexes argue for mixing
    # kinds); GenericJoin accepts both spellings.
    return GenericJoin(
        query,
        attribute_order=attribute_order,
        database=database,
        backend=backend or DEFAULT_BACKEND,
    )


def _make_leapfrog(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
) -> LeapfrogTriejoin:
    return LeapfrogTriejoin(
        query, attribute_order=attribute_order, database=database
    )


def _make_arity_two(
    query: JoinQuery,
    *,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str,
    database: Database | None,
) -> ArityTwoJoin:
    return ArityTwoJoin(query, cover=cover)


#: Algorithm name -> executor factory.  The single source of truth for
#: selectable algorithms: ``repro.api.ALGORITHMS`` and the CLI both
#: derive their choices from these keys (plus the planner's ``"auto"``).
EXECUTORS = {
    "nprr": _make_nprr,
    "lw": _make_lw,
    "generic": _make_generic,
    "leapfrog": _make_leapfrog,
    "arity2": _make_arity_two,
}


def algorithm_names(include_auto: bool = True) -> tuple[str, ...]:
    """Public algorithm names, optionally with the planner's ``"auto"``."""
    names = tuple(EXECUTORS)
    return names + ("auto",) if include_auto else names


def build_executor(
    query: JoinQuery,
    algorithm: str,
    *,
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | Mapping[str, str] = DEFAULT_BACKEND,
    database: Database | None = None,
):
    """Instantiate the executor for a *resolved* algorithm name.

    ``algorithm`` must be a concrete name (``"auto"`` is resolved by the
    planner, not here).  Raises :class:`~repro.errors.QueryError` for an
    unknown name before touching any relation data.
    """
    try:
        factory = EXECUTORS[algorithm]
    except KeyError:
        raise QueryError(
            f"unknown algorithm {algorithm!r}; "
            f"choose one of {algorithm_names()}"
        ) from None
    return factory(
        query,
        cover=cover,
        attribute_order=attribute_order,
        backend=backend,
        database=database,
    )
