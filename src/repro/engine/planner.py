"""Cost-based planning: algorithm, attribute order, and backend selection.

The paper proves (Theorem 5.1, and the Generic Join analysis in "Skew
Strikes Back") that *any* attribute order is worst-case optimal — but
Remark 5.2 and every practical WCOJ system (LogicBlox's Leapfrog,
EmptyHeaded, Umbra) observe that order choice drives constant factors by
orders of magnitude.  Before this planner existed each executor
hard-coded ``query.attributes``; now order selection, algorithm dispatch,
and index-backend choice live in one place, modeled on the
``JoinOrderOptimizer`` separation PostBOUND uses for classical optimizers.

The product is an inspectable :class:`JoinPlan`:

* **algorithm** — a specialist when the query shape allows it (Algorithm 1
  for Loomis-Whitney instances, Theorem 7.3's decomposition for arity-2
  queries), else a generic WCOJ executor;
* **attribute order** — greedy most-selective-first: ascending per-
  attribute distinct-count (a smallest-domain heuristic computed from the
  actual data in one linear scan), constrained to keep the chosen prefix
  connected so early levels prune;
* **backend** — ``"sorted"`` flat arrays for leapfrog (its native
  layout), hash tries otherwise (O(1) probes, precomputed (ST2) counts);
* **estimated AGM bound** — the fractional-cover output bound of
  Section 2, with its certificate cover attached (the
  :mod:`repro.core.estimates` machinery).

``JoinPlan.execute`` / ``JoinPlan.iter_rows`` hand off to the executor
registry, so ``repro.join`` / ``repro.iter_join`` and the CLI ``explain``
command are thin wrappers over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

import os

from repro.core.query import JoinQuery
from repro.engine.backends import validate_backend
from repro.engine.executors import algorithm_names, build_executor
from repro.errors import PlanError, QueryError, require_positive_int
from repro.hypergraph.agm import best_agm_bound
from repro.hypergraph.covers import FractionalCover
from repro.relations.database import Database
from repro.relations.relation import Relation, Row
from repro.relations.sorted_index import SortedArrayIndex
from repro.relations.trie import TrieIndex

__all__ = [
    "JoinPlan",
    "attribute_statistics",
    "plan_attribute_order",
    "plan_join",
]


#: Algorithms that honor a caller-chosen global attribute order.
ORDER_SENSITIVE = ("generic", "leapfrog")

#: Index-backend kinds each algorithm can actually run on.  Algorithms
#: absent here (lw, arity2) build no per-order indexes at all.
BACKEND_CHOICES = {
    "generic": ("trie", "sorted"),
    "leapfrog": ("sorted",),
    "nprr": ("trie",),
}

#: Placeholder backend for algorithms that build no per-order indexes.
NO_BACKEND = "none"

#: Below this total input size (``sum_e N_e``) auto-sharding stays serial:
#: fork/queue overhead dwarfs any parallel win on small queries.
AUTO_SHARD_MIN_TUPLES = 4096

#: Auto-sharding never exceeds this many shards, however many CPUs exist.
MAX_AUTO_SHARDS = 8

#: Bounds for the planner's ``batch_size="auto"`` choice.
MIN_AUTO_BATCH, MAX_AUTO_BATCH = 64, 4096


@dataclass(frozen=True)
class JoinPlan:
    """An inspectable execution plan for one natural join query.

    Produced by :func:`plan_join`; consumed by ``repro.api`` and the CLI.
    ``reasons`` records why each choice was made, in decision order.
    Every field reports what the executor will actually do — the planner
    rejects requests an executor would silently ignore.
    """

    query: JoinQuery
    algorithm: str
    attribute_order: tuple[str, ...]
    backend: str
    cover: FractionalCover | None = None
    reasons: tuple[str, ...] = field(default_factory=tuple)
    #: Parallel shard count.  ``1`` means serial execution; values above 1
    #: partition the first attribute of :attr:`attribute_order` across
    #: workers (see :mod:`repro.engine.parallel`).  Populated by
    #: :func:`plan_join` — either fixed by the caller or derived from data
    #: statistics with ``shards="auto"``.
    shards: int = 1
    #: Rows per delivered batch for batched consumption, or ``None`` for
    #: row-at-a-time streaming.  ``plan_join(batch_size="auto")`` sizes it
    #: from the AGM output estimate.
    batch_size: int | None = None
    # Lazily computed AGM bound cache (None until first access), so the
    # cover LP is not solved on join() calls that never inspect the plan.
    _bound: float | None = field(default=None, repr=False, compare=False)

    @property
    def estimated_bound(self) -> float:
        """The AGM output bound for the query's current relation sizes.

        Computed on first access (an exact-fraction LP solve) and cached;
        plans executed without inspection never pay for it.
        """
        if self._bound is None:
            _cover, bound = best_agm_bound(
                self.query.hypergraph, self.query.sizes()
            )
            object.__setattr__(self, "_bound", bound)
        return self._bound

    def executor(self, database: Database | None = None):
        """Build (but do not run) this plan's executor."""
        return build_executor(
            self.query,
            self.algorithm,
            cover=self.cover,
            attribute_order=self.attribute_order,
            backend=self.backend,
            database=database,
        )

    def execute(
        self, name: str = "J", database: Database | None = None
    ) -> Relation:
        """Run the plan and materialize the join result."""
        return self.executor(database).execute(name)

    def iter_rows(self, database: Database | None = None) -> Iterator[Row]:
        """Run the plan, streaming rows in the query's attribute order.

        Serial execution regardless of :attr:`shards` — the parallel
        drivers in :mod:`repro.engine.parallel` consume the plan's shard
        fields; this method is the per-worker (and per-shard) primitive.
        """
        return self.executor(database).iter_join()

    def iter_batches(
        self,
        database: Database | None = None,
        batch_size: int | None = None,
    ) -> Iterator[list[Row]]:
        """Run the plan, streaming rows in fixed-size batches.

        ``batch_size`` defaults to the plan's :attr:`batch_size` field
        (or 1024 when the plan carries none).  The final batch may be
        short; no empty batch is ever yielded.
        """
        from repro.engine.parallel import DEFAULT_BATCH_SIZE, batches

        size = batch_size if batch_size is not None else self.batch_size
        if size is None:
            size = DEFAULT_BATCH_SIZE
        return batches(self.iter_rows(database=database), size)

    def describe(self) -> str:
        """A human-readable rendering (the CLI ``explain`` output)."""
        sizes = self.query.sizes()
        lines = [
            f"query: {self.query!r}",
            f"algorithm: {self.algorithm}",
            f"attribute order: {', '.join(self.attribute_order)}",
            f"index backend: {self.backend}",
            f"shards: {self.shards}",
            "batch size: "
            + (str(self.batch_size) if self.batch_size else "row-at-a-time"),
            f"estimated output (AGM bound): {self.estimated_bound:.3f} tuples",
            "relation sizes: "
            + ", ".join(f"{eid}={n}" for eid, n in sizes.items()),
        ]
        if self.cover is not None:
            lines.append(
                "fractional cover: "
                + ", ".join(
                    f"x[{eid}]={weight}"
                    for eid, weight in self.cover.items()
                )
            )
        if self.reasons:
            lines.append("decisions:")
            lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


def attribute_statistics(query: JoinQuery) -> dict[str, int]:
    """Per-attribute selectivity scores from one linear data scan.

    The score of attribute ``A`` is ``min_e |pi_A(R_e)|`` over the
    relations containing ``A`` — the tightest distinct-count any index on
    ``A`` will present.  Lower scores mean earlier intersection levels
    stay smaller (the smallest-domain heuristic).
    """
    scores: dict[str, int] = {}
    for relation in query.relations.values():
        distinct: list[set] = [set() for _ in relation.attributes]
        for row in relation.tuples:
            for i, value in enumerate(row):
                distinct[i].add(value)
        for attribute, values in zip(relation.attributes, distinct):
            count = len(values)
            if attribute not in scores or count < scores[attribute]:
                scores[attribute] = count
    return scores


def plan_attribute_order(
    query: JoinQuery, scores: dict[str, int] | None = None
) -> tuple[str, ...]:
    """A greedy most-selective-first, connectivity-respecting order.

    Start from the globally most selective attribute; repeatedly append
    the most selective attribute sharing a relation with the prefix (so
    each new level is constrained by at least one already-bound relation
    and prunes instead of cross-producting).  Ties break on first
    appearance in the query, keeping the result deterministic.

    ``scores`` accepts a precomputed :func:`attribute_statistics` result
    so callers that also want the statistics scan the data only once.
    """
    if scores is None:
        scores = attribute_statistics(query)
    appearance = {a: i for i, a in enumerate(query.attributes)}
    neighbors: dict[str, set[str]] = {a: set() for a in query.attributes}
    for relation in query.relations.values():
        for a in relation.attributes:
            neighbors[a].update(relation.attributes)

    def sort_key(attribute: str) -> tuple[int, int]:
        return (scores[attribute], appearance[attribute])

    remaining = set(query.attributes)
    order: list[str] = []
    frontier: set[str] = set()
    while remaining:
        candidates = frontier & remaining
        if not candidates:
            candidates = remaining  # new connected component (or start)
        chosen = min(candidates, key=sort_key)
        order.append(chosen)
        remaining.discard(chosen)
        frontier |= neighbors[chosen]
    return tuple(order)


def _choose_algorithm(
    query: JoinQuery,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str | None,
    reasons: list[str],
) -> str:
    """Shape-directed algorithm selection for ``"auto"``."""
    if cover is not None:
        reasons.append(
            "caller supplied a fractional cover: Algorithm 2 (nprr) is the "
            "cover-driven executor"
        )
        return "nprr"
    if attribute_order is not None or backend is not None:
        reasons.append(
            "caller fixed an attribute order or backend: Generic Join "
            "honors both (the shape specialists derive their own)"
        )
        return "generic"
    if query.is_lw_instance():
        reasons.append(
            "query is a Loomis-Whitney instance: Algorithm 1 (lw) runs in "
            "the LW bound (Theorem 4.1)"
        )
        return "lw"
    if query.hypergraph.is_graph():
        reasons.append(
            "every relation has arity <= 2: Theorem 7.3's decomposition "
            "(arity2) has O(m) query complexity"
        )
        return "arity2"
    reasons.append(
        "general shape: Generic Join streams attribute-at-a-time within "
        "the AGM bound"
    )
    return "generic"


def _auto_shards(query: JoinQuery, reasons: list[str]) -> int:
    """Pick a shard count from input size and host parallelism.

    Serial below :data:`AUTO_SHARD_MIN_TUPLES` total input tuples (fork
    and queue overhead would dominate); otherwise one shard per available
    CPU, capped at :data:`MAX_AUTO_SHARDS`.
    """
    total = query.total_input_size()
    if total < AUTO_SHARD_MIN_TUPLES:
        reasons.append(
            f"serial: {total} input tuples < {AUTO_SHARD_MIN_TUPLES} "
            "auto-shard threshold"
        )
        return 1
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        cpus = os.cpu_count() or 1
    shards = max(1, min(MAX_AUTO_SHARDS, cpus))
    reasons.append(
        f"{shards} shard(s): {total} input tuples across {cpus} "
        "available CPU(s)"
    )
    return shards


def _auto_batch_size(
    query: JoinQuery,
) -> tuple[int, FractionalCover, float]:
    """Size batches from the AGM output estimate: roughly sqrt(bound),
    clamped to [:data:`MIN_AUTO_BATCH`, :data:`MAX_AUTO_BATCH`] — small
    results fit one batch, huge results amortize per-batch overhead
    without hoarding memory.  Returns the cover and bound alongside so
    the plan can reuse them instead of re-solving the LP."""
    cover, bound = best_agm_bound(query.hypergraph, query.sizes())
    size = max(MIN_AUTO_BATCH, min(MAX_AUTO_BATCH, round(bound**0.5)))
    return size, cover, bound


def _resolve_shards(
    query: JoinQuery, shards: int | str | None, reasons: list[str]
) -> int:
    if shards is None:
        return 1
    if shards == "auto":
        return _auto_shards(query, reasons)
    require_positive_int(shards, "shards", " or 'auto'")
    reasons.append(f"shard count fixed by caller: {shards}")
    return shards


def _resolve_batch_size(
    query: JoinQuery, batch_size: int | str | None, reasons: list[str]
) -> tuple[int | None, FractionalCover | None, float | None]:
    """Resolve the batch size; also pass back the (cover, bound) pair the
    ``"auto"`` path had to compute, so the plan never solves the same LP
    twice."""
    if batch_size is None:
        return None, None, None
    if batch_size == "auto":
        size, auto_cover, bound = _auto_batch_size(query)
        reasons.append(f"batch size from AGM estimate: {size}")
        return size, auto_cover, bound
    require_positive_int(batch_size, "batch_size", " or 'auto'")
    reasons.append(f"batch size fixed by caller: {batch_size}")
    return batch_size, None, None


def plan_join(
    query: JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    shards: int | str | None = None,
    batch_size: int | str | None = None,
) -> JoinPlan:
    """Produce a :class:`JoinPlan` for ``query``.

    ``algorithm`` may be any registered executor name or ``"auto"``;
    unknown names are rejected here, before any index is built.  The
    relation-size statistics are exactly what ``Database.sizes()`` reports
    for catalogued relations, so plans computed against a catalog match
    plans computed against the bound query.

    ``shards`` and ``batch_size`` populate the plan's parallel-execution
    fields: each accepts a positive int, the string ``"auto"`` (choose
    from data statistics), or ``None`` (serial / row-at-a-time).  Requests
    the engine cannot honor raise :class:`~repro.errors.PlanError`.
    """
    if algorithm not in algorithm_names():
        raise QueryError(
            f"unknown algorithm {algorithm!r}; "
            f"choose one of {algorithm_names()}"
        )
    if backend is not None:
        validate_backend(backend)
    reasons: list[str] = []
    if algorithm == "auto":
        algorithm = _choose_algorithm(
            query, cover, attribute_order, backend, reasons
        )
    else:
        reasons.append(f"algorithm {algorithm!r} fixed by caller")
    if cover is not None:
        query.validate_cover(cover)

    # Requests the executor would silently ignore are plan-time errors:
    # the plan must report what actually runs.
    order_sensitive = algorithm in ORDER_SENSITIVE
    if attribute_order is not None and not order_sensitive:
        raise PlanError(
            f"algorithm {algorithm!r} derives its own attribute order; "
            f"drop attribute_order or choose one of {ORDER_SENSITIVE}"
        )
    allowed_backends = BACKEND_CHOICES.get(algorithm, ())
    if backend is not None and backend not in allowed_backends:
        raise PlanError(
            f"algorithm {algorithm!r} cannot run on backend {backend!r}"
            + (
                f"; it supports {allowed_backends}"
                if allowed_backends
                else " (it builds no per-order indexes)"
            )
        )

    if attribute_order is not None:
        order = tuple(attribute_order)
        reasons.append(f"attribute order fixed by caller: {', '.join(order)}")
    elif order_sensitive:
        scores = attribute_statistics(query)
        order = plan_attribute_order(query, scores)
        reasons.append(
            "attribute order by ascending distinct-count: "
            + ", ".join(f"{a}({scores[a]})" for a in order)
        )
    else:
        order = query.attributes
        reasons.append(
            f"{algorithm} derives its own order; keeping query order"
        )

    if backend is not None:
        reasons.append(f"backend {backend!r} fixed by caller")
    elif algorithm == "leapfrog":
        backend = SortedArrayIndex.kind
        reasons.append(
            "sorted flat-array backend: leapfrog seeks need sorted runs"
        )
    elif algorithm in ("generic", "nprr"):
        backend = TrieIndex.kind
        reasons.append(
            "hash-trie backend: O(1) probes and precomputed counts"
        )
    else:
        backend = NO_BACKEND
        reasons.append(f"{algorithm} builds no per-order indexes")

    shard_count = _resolve_shards(query, shards, reasons)
    batch, auto_cover, bound = _resolve_batch_size(
        query, batch_size, reasons
    )

    # Only the cover-driven algorithms pay for the cover LP at plan time
    # (their executors would solve the same LP anyway); everyone else
    # defers the AGM bound until someone inspects the plan — unless the
    # auto-batch path already solved it above, in which case it is reused.
    plan_cover = cover
    if algorithm in ("nprr", "arity2") and cover is None:
        if auto_cover is not None:
            plan_cover = auto_cover
        else:
            plan_cover, bound = best_agm_bound(
                query.hypergraph, query.sizes()
            )
    return JoinPlan(
        query=query,
        algorithm=algorithm,
        attribute_order=order,
        backend=backend,
        cover=plan_cover,
        reasons=tuple(reasons),
        shards=shard_count,
        batch_size=batch,
        _bound=bound,
    )
