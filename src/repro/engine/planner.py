"""Cost-based planning: algorithm, attribute order, and backend selection.

The paper proves (Theorem 5.1, and the Generic Join analysis in "Skew
Strikes Back") that *any* attribute order is worst-case optimal — but
Remark 5.2 and every practical WCOJ system (LogicBlox's Leapfrog,
EmptyHeaded, Umbra) observe that order choice drives constant factors by
orders of magnitude.  Before this planner existed each executor
hard-coded ``query.attributes``; now order selection, algorithm dispatch,
and index-backend choice live in one place, modeled on the
``JoinOrderOptimizer`` separation PostBOUND uses for classical optimizers.

The product is an inspectable :class:`JoinPlan`:

* **algorithm** — a specialist when the query shape allows it (Algorithm 1
  for Loomis-Whitney instances, Theorem 7.3's decomposition for arity-2
  queries), else a generic WCOJ executor;
* **attribute order** — a greedy descent on *estimated partial-result
  sizes*: each step multiplies the candidate attribute's min-distinct
  count by the sampled conditional selectivities against the relations
  already bound (:mod:`repro.stats`), clamped by the AGM sub-bounds of
  the covered sub-queries (:func:`repro.core.estimates.
  subquery_estimates`).  With sampling disabled the planner falls back
  to the classical ascending-distinct-count heuristic.  Either way the
  chosen prefix stays connected so early levels prune;
* **backend** — ``"sorted"`` flat arrays for leapfrog (its native
  layout; callers may fix ``"compact"`` for packed runs with radix
  seeks); for Generic Join a **per-relation** choice driven by cached-
  index availability in the ``Database`` and each relation's profile:
  heavy first levels get O(1) hash-trie probes, dense integer or large
  low-skew first levels get the ``"compact"`` packed flat arrays, hash
  tries otherwise (O(1) probes, precomputed (ST2) counts);
* **shards** — ``shards="auto"`` sizes the shard count from input size,
  CPU count, *and* the first attribute's heavy-hitter mass, so hot
  values ("Skew Strikes Back"'s heavy side) land in their own shard;
* **estimated AGM bound** — the fractional-cover output bound of
  Section 2, with its certificate cover attached (the
  :mod:`repro.core.estimates` machinery).

Every data-driven decision is recorded on the plan:
:attr:`JoinPlan.statistics` carries the
:class:`~repro.stats.provider.PlanStatistics` that justified it, and
``describe(show_stats=True)`` (the CLI's ``explain --stats``) renders
them.

``JoinPlan.execute`` / ``JoinPlan.iter_rows`` hand off to the executor
registry, so ``repro.join`` / ``repro.iter_join`` and the CLI ``explain``
command are thin wrappers over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Mapping, Sequence

import os

from repro.core.estimates import subquery_estimates
from repro.core.query import JoinQuery
from repro.engine.backends import validate_backend
from repro.engine.compact import CompactArrayIndex
from repro.engine.executors import algorithm_names, build_executor
from repro.errors import PlanError, QueryError, require_positive_int
from repro.hypergraph.agm import best_agm_bound
from repro.hypergraph.covers import FractionalCover
from repro.observe.tracing import maybe_span
from repro.relations.database import DEFAULT_BACKEND, INDEX_BACKENDS, Database
from repro.relations.relation import Relation, Row, Value
from repro.relations.sorted_index import SortedArrayIndex
from repro.relations.trie import TrieIndex
from repro.stats.provider import (
    PlanStatistics,
    StatsConfig,
    StatsProvider,
    default_provider,
    resolve_provider,
)

__all__ = [
    "JoinPlan",
    "attribute_statistics",
    "plan_attribute_order",
    "plan_attribute_order_feedback",
    "plan_attribute_order_sampled",
    "plan_join",
]


#: Algorithms that honor a caller-chosen global attribute order.
ORDER_SENSITIVE = ("generic", "leapfrog")

#: Index-backend kinds each algorithm can actually run on.  Algorithms
#: absent here (lw, arity2) build no per-order indexes at all.  Leapfrog
#: needs an ``open/up/next/seek`` cursor, which the sorted and compact
#: backends provide; NPRR's per-tuple case analysis needs the trie's
#: O(1) precomputed counts.
BACKEND_CHOICES = {
    "generic": ("trie", "sorted", "compact"),
    "leapfrog": ("sorted", "compact"),
    "nprr": ("trie",),
}

#: Placeholder backend for algorithms that build no per-order indexes.
NO_BACKEND = "none"

#: Below this total input size (``sum_e N_e``) auto-sharding stays serial:
#: fork/queue overhead dwarfs any parallel win on small queries.
AUTO_SHARD_MIN_TUPLES = 4096

#: Auto-sharding never exceeds this many shards, however many CPUs exist.
MAX_AUTO_SHARDS = 8

#: Bounds for the planner's ``batch_size="auto"`` choice.
MIN_AUTO_BATCH, MAX_AUTO_BATCH = 64, 4096

#: ``subquery_estimates`` enumerates relation subsets (exponential in the
#: relation count); the sampled order descent only consults it for
#: queries at most this many relations wide.
MAX_SUBQUERY_RELATIONS = 6

#: Relations at or above this size with a low-skew first index level get
#: a flat-array backend (``"compact"``) when no cached index exists: one
#: ``O(N log N)`` sort builds cheaper (and far leaner in memory) than N
#: per-tuple dict-chain inserts, and without heavy values the log-factor
#: probes are not concentrated on hot paths.
LARGE_FLAT_RELATION = 32768

#: Backwards-compatible alias for the pre-compact name of the flat-array
#: size threshold.
LARGE_SORTED_RELATION = LARGE_FLAT_RELATION

#: Relations whose first index level is all-integer and at least this
#: dense (``distinct / span``) get the ``"compact"`` backend: most of its
#: value runs are dense or near-dense, so seeks resolve by radix
#: arithmetic or a short interpolated gallop instead of hash probes.
#: Matches ``1 / repro.engine.compact.DENSITY_THRESHOLD``.
DENSE_FIRST_LEVEL = 0.25

#: The density rule only fires at or above this relation size — tiny
#: relations are nearly always "dense" by accident, and the trie's O(1)
#: probes win outright when everything fits in cache anyway.
DENSE_COMPACT_RELATION = 2048


@dataclass(frozen=True)
class JoinPlan:
    """An inspectable execution plan for one natural join query.

    Produced by :func:`plan_join`; consumed by ``repro.api`` and the CLI.
    ``reasons`` records why each choice was made, in decision order.
    Every field reports what the executor will actually do — the planner
    rejects requests an executor would silently ignore.
    """

    query: JoinQuery
    algorithm: str
    attribute_order: tuple[str, ...]
    backend: str
    cover: FractionalCover | None = None
    reasons: tuple[str, ...] = field(default_factory=tuple)
    #: Parallel shard count.  ``1`` means serial execution; values above 1
    #: partition the first attribute of :attr:`attribute_order` across
    #: workers (see :mod:`repro.engine.parallel`).  Populated by
    #: :func:`plan_join` — either fixed by the caller or derived from data
    #: statistics with ``shards="auto"``.
    shards: int = 1
    #: Rows per delivered batch for batched consumption, or ``None`` for
    #: row-at-a-time streaming.  ``plan_join(batch_size="auto")`` sizes it
    #: from the AGM output estimate.
    batch_size: int | None = None
    #: Per-relation index-backend choices as ``(edge id, kind)`` pairs,
    #: set when the planner picked different backends for different
    #: relations (:attr:`backend` then reads ``"mixed"``).  ``None``
    #: means every relation uses :attr:`backend`.
    relation_backends: tuple[tuple[str, str], ...] | None = None
    #: The statistics that justified the data-driven decisions, or
    #: ``None`` when none were consulted (caller fixed everything, or
    #: the algorithm derives its own order and no sharding was asked
    #: for).  See :class:`~repro.stats.provider.PlanStatistics`.
    statistics: PlanStatistics | None = None
    #: Equality-bound attributes the query layer *eliminated* from this
    #: plan, as ``(attribute, value)`` pairs: each attribute's level was
    #: removed by sectioning the relations that contain it (Remark 5.2's
    #: ahead-of-time evaluation of a constant binding), so
    #: :attr:`query` is the *residual* query and
    #: :attr:`attribute_order` never mentions these attributes.
    bound: tuple[tuple[str, Value], ...] = ()
    #: Residual selection predicates pushed into the executors, as
    #: ``(attribute, description)`` pairs — the rendering half; the
    #: callables themselves travel via the ``filters`` argument of
    #: :meth:`executor` so plans stay comparable and picklable.
    filtered: tuple[tuple[str, str], ...] = ()
    #: Output projection the query layer will stream over this plan's
    #: rows, or ``None`` for the full schema.
    selected: tuple[str, ...] | None = None
    #: Aggregate mode the query layer will run over this plan instead of
    #: enumerating rows (``"count"``, ``"sum"``, ``"min"``, ``"max"``,
    #: ``"group_by"``, ``"sample"``), or ``None`` for plain enumeration.
    #: Informational: the aggregate fold consumes the same executor this
    #: plan builds, it just never materializes the rows.
    aggregate: str | None = None
    # Lazily computed AGM bound cache (None until first access), so the
    # cover LP is not solved on join() calls that never inspect the plan.
    _bound: float | None = field(default=None, repr=False, compare=False)

    @property
    def estimated_bound(self) -> float:
        """The AGM output bound for the query's current relation sizes.

        Computed on first access (an exact-fraction LP solve) and cached;
        plans executed without inspection never pay for it.
        """
        if self._bound is None:
            _cover, bound = best_agm_bound(
                self.query.hypergraph, self.query.sizes()
            )
            object.__setattr__(self, "_bound", bound)
        return self._bound

    def executor(
        self,
        database: Database | None = None,
        filters: Mapping[str, Callable[[Value], bool]] | None = None,
        telemetry=None,
    ):
        """Build (but do not run) this plan's executor.

        ``filters`` are the query layer's residual predicates (the
        callables matching :attr:`filtered`); they hook the level that
        binds each attribute for the attribute-at-a-time executors and
        filter emitted rows for the blocking specialists.  ``telemetry``
        attaches a :class:`~repro.feedback.telemetry.TelemetryProbe` to
        executors that support per-level counting (see
        :data:`~repro.engine.executors.NATIVE_TELEMETRY`).
        """
        backend: str | dict[str, str] = self.backend
        if self.relation_backends is not None:
            backend = dict(self.relation_backends)
        return build_executor(
            self.query,
            self.algorithm,
            cover=self.cover,
            attribute_order=self.attribute_order,
            backend=backend,
            database=database,
            filters=filters,
            telemetry=telemetry,
        )

    def execute(
        self,
        name: str = "J",
        database: Database | None = None,
        filters: Mapping[str, Callable[[Value], bool]] | None = None,
    ) -> Relation:
        """Run the plan and materialize the join result."""
        return self.executor(database, filters=filters).execute(name)

    def iter_rows(
        self,
        database: Database | None = None,
        filters: Mapping[str, Callable[[Value], bool]] | None = None,
    ) -> Iterator[Row]:
        """Run the plan, streaming rows in the query's attribute order.

        Serial execution regardless of :attr:`shards` — the parallel
        drivers in :mod:`repro.engine.parallel` consume the plan's shard
        fields; this method is the per-worker (and per-shard) primitive.
        """
        return self.executor(database, filters=filters).iter_join()

    def iter_batches(
        self,
        database: Database | None = None,
        batch_size: int | None = None,
        filters: Mapping[str, Callable[[Value], bool]] | None = None,
    ) -> Iterator[list[Row]]:
        """Run the plan, streaming rows in fixed-size batches.

        ``batch_size`` defaults to the plan's :attr:`batch_size` field
        (or 1024 when the plan carries none).  The final batch may be
        short; no empty batch is ever yielded.
        """
        from repro.engine.parallel import DEFAULT_BATCH_SIZE, batches

        size = batch_size if batch_size is not None else self.batch_size
        if size is None:
            size = DEFAULT_BATCH_SIZE
        return batches(self.iter_rows(database=database, filters=filters), size)

    def index_requirements(self) -> tuple[tuple[str, tuple[str, ...], str], ...]:
        """The ``(relation name, index order, backend kind)`` triples this
        plan's executor will request when built.

        The contract behind :meth:`Database.warm
        <repro.relations.database.Database.warm>`: pre-building exactly
        these indexes through the catalog's cache makes a later
        execution of this plan hit on every index lookup.  Algorithms
        that build no per-order indexes (``lw``, ``arity2``) return an
        empty tuple.

        This mirrors how each executor resolves its indexes —
        GenericJoin's per-relation kinds (``DEFAULT_BACKEND``
        fallback), Leapfrog's sorted arrays, NPRR's QP-tree relation
        orders.  Any change to an executor's resolution must land here
        too, or warmed runs silently miss the cache;
        ``tests/query/test_warm.py`` asserts the zero-miss contract per
        algorithm (including the mixed per-relation path) to catch
        drift.
        """
        rank = {a: i for i, a in enumerate(self.attribute_order)}
        per_relation = (
            dict(self.relation_backends)
            if self.relation_backends is not None
            else None
        )
        if self.algorithm in ("generic", "leapfrog"):
            if self.algorithm == "leapfrog":
                kind_default = (
                    self.backend
                    if self.backend in BACKEND_CHOICES["leapfrog"]
                    else SortedArrayIndex.kind
                )
            else:
                kind_default = (
                    self.backend
                    if self.backend in INDEX_BACKENDS
                    else DEFAULT_BACKEND
                )
            triples = []
            for eid in self.query.edge_ids:
                relation = self.query.relation(eid)
                order = tuple(
                    sorted(relation.attributes, key=rank.__getitem__)
                )
                kind = (
                    per_relation.get(eid, DEFAULT_BACKEND)
                    if per_relation is not None
                    else kind_default
                )
                triples.append((eid, order, kind))
            return tuple(triples)
        if self.algorithm == "nprr":
            from repro.core.qptree import QPTree

            tree = QPTree(self.query.hypergraph)
            return tuple(
                (eid, tuple(tree.relation_order(eid)), TrieIndex.kind)
                for eid in self.query.edge_ids
            )
        return ()

    def describe(self, show_stats: bool = False) -> str:
        """A human-readable rendering (the CLI ``explain`` output).

        ``show_stats`` appends the :attr:`statistics` block — the
        numbers (distinct counts, sampled selectivities, heavy hitters)
        that justified the data-driven decisions.
        """
        sizes = self.query.sizes()
        backend = self.backend
        if self.relation_backends is not None:
            backend += (
                " ("
                + ", ".join(
                    f"{eid}={kind}" for eid, kind in self.relation_backends
                )
                + ")"
            )
        lines = [
            f"query: {self.query!r}",
            f"algorithm: {self.algorithm}",
            f"attribute order: {', '.join(self.attribute_order)}",
        ]
        if self.bound:
            lines.append(
                "bound attributes: "
                + ", ".join(f"{a}={v!r}" for a, v in self.bound)
                + " (levels eliminated by sectioning)"
            )
        if self.filtered:
            lines.append(
                "residual filters: "
                + "; ".join(description for _a, description in self.filtered)
            )
        if self.selected is not None:
            lines.append(
                "select: "
                + (", ".join(self.selected) if self.selected else "(none)")
                + " (streamed projection)"
            )
        if self.aggregate is not None:
            lines.append(
                f"aggregate: {self.aggregate} (folded into the level "
                "loops; rows never materialized)"
            )
        lines += [
            f"index backend: {backend}",
            f"shards: {self.shards}",
            "batch size: "
            + (str(self.batch_size) if self.batch_size else "row-at-a-time"),
            f"estimated output (AGM bound): {self.estimated_bound:.3f} tuples",
            "relation sizes: "
            + ", ".join(f"{eid}={n}" for eid, n in sizes.items()),
        ]
        if show_stats and self.statistics is not None:
            lines.append(self.statistics.describe())
        if self.cover is not None:
            lines.append(
                "fractional cover: "
                + ", ".join(
                    f"x[{eid}]={weight}"
                    for eid, weight in self.cover.items()
                )
            )
        if self.reasons:
            lines.append("decisions:")
            lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


def attribute_statistics(
    query: JoinQuery, stats: StatsProvider | None = None
) -> dict[str, int]:
    """Per-attribute selectivity scores (min distinct count).

    The score of attribute ``A`` is ``min_e |pi_A(R_e)|`` over the
    relations containing ``A`` — the tightest distinct-count any index on
    ``A`` will present.  Lower scores mean earlier intersection levels
    stay smaller (the smallest-domain heuristic).

    Served from ``stats`` (a :class:`~repro.stats.provider.
    StatsProvider`) when given, so repeated plans over the same
    ``Database`` reuse cached relation profiles instead of rescanning;
    without one, an ephemeral provider scans the data once.
    """
    provider = stats if stats is not None else default_provider()
    return provider.attribute_scores(query)


def plan_attribute_order(
    query: JoinQuery, scores: dict[str, int] | None = None
) -> tuple[str, ...]:
    """A greedy most-selective-first, connectivity-respecting order.

    Start from the globally most selective attribute; repeatedly append
    the most selective attribute sharing a relation with the prefix (so
    each new level is constrained by at least one already-bound relation
    and prunes instead of cross-producting).  Ties break on first
    appearance in the query, keeping the result deterministic.

    ``scores`` accepts a precomputed :func:`attribute_statistics` result
    so callers that also want the statistics scan the data only once.
    """
    if scores is None:
        scores = attribute_statistics(query)
    appearance = {a: i for i, a in enumerate(query.attributes)}
    neighbors: dict[str, set[str]] = {a: set() for a in query.attributes}
    for relation in query.relations.values():
        for a in relation.attributes:
            neighbors[a].update(relation.attributes)

    def sort_key(attribute: str) -> tuple[int, int]:
        return (scores[attribute], appearance[attribute])

    remaining = set(query.attributes)
    order: list[str] = []
    frontier: set[str] = set()
    while remaining:
        candidates = frontier & remaining
        if not candidates:
            candidates = remaining  # new connected component (or start)
        chosen = min(candidates, key=sort_key)
        order.append(chosen)
        remaining.discard(chosen)
        frontier |= neighbors[chosen]
    return tuple(order)


def _prefix_clamp(
    relations: Mapping[str, Relation],
    sub_bounds: Mapping[frozenset, float],
    bound_attrs: set[str],
    attribute: str,
    estimate: float,
) -> float:
    """Clamp a partial-result estimate by the hard upper bounds that hold
    whenever the relations fully covered by ``prefix + attribute`` span
    exactly its attributes: the covered relations' sizes and the AGM
    sub-bound of the covered sub-query.  Shared by the sampled and the
    feedback order descents."""
    prefix_attrs = bound_attrs | {attribute}
    covered = frozenset(
        eid
        for eid, relation in relations.items()
        if relation.attribute_set <= prefix_attrs
    )
    covered_attrs: set[str] = set()
    for eid in covered:
        covered_attrs |= relations[eid].attribute_set
    if covered and covered_attrs == prefix_attrs:
        # The partial tuples over prefix_attrs project INTO every
        # covered relation, so these clamps are true upper bounds.
        estimate = min(
            estimate, min(float(len(relations[eid])) for eid in covered)
        )
        if covered in sub_bounds:
            estimate = min(estimate, sub_bounds[covered])
    return estimate


def _subquery_bounds(query: JoinQuery) -> dict[frozenset, float]:
    """AGM sub-bounds for the order descents (skipped for very wide
    queries — ``subquery_estimates`` enumerates relation subsets)."""
    if len(query.edge_ids) > MAX_SUBQUERY_RELATIONS:
        return {}
    return {
        subset: estimate.bound
        for subset, estimate in subquery_estimates(query).items()
    }


class _DescentState:
    """The evolving state of one greedy order descent, exposed to the
    per-variant estimate callbacks (shared by the sampled and feedback
    descents so their loop mechanics cannot drift apart)."""

    __slots__ = ("order", "bound_attrs", "touched", "partial", "rels_with")

    def __init__(self, rels_with: dict[str, list[str]]) -> None:
        self.order: list[str] = []
        self.bound_attrs: set[str] = set()
        self.touched: set[str] = set()  # edge ids with a bound attribute
        self.partial = 1.0
        self.rels_with = rels_with


def _greedy_descent(
    query: JoinQuery,
    scores: dict[str, int],
    estimate_for,
    on_chosen=None,
) -> tuple[tuple[str, ...], tuple[tuple[str, float], ...]]:
    """The shared greedy, connectivity-respecting order descent.

    At each step the attribute minimizing ``estimate_for(attribute,
    state)`` among the frontier candidates is appended (ties fall back
    to the distinct-count score, then first appearance).  The estimate
    semantics live entirely in the callback — sampled selectivities for
    the statistics planner, observed telemetry for the feedback planner
    — so the loop mechanics (frontier bookkeeping, tie-breaking,
    partial-size threading) exist exactly once.  ``on_chosen`` fires
    after each selection, before the state advances (for per-step
    evidence recording).
    """
    appearance = {a: i for i, a in enumerate(query.attributes)}
    rels_with: dict[str, list[str]] = {a: [] for a in query.attributes}
    neighbors: dict[str, set[str]] = {a: set() for a in query.attributes}
    for eid, relation in query.relations.items():
        for a in relation.attributes:
            rels_with[a].append(eid)
            neighbors[a].update(relation.attributes)

    state = _DescentState(rels_with)
    estimates: list[tuple[str, float]] = []
    remaining = set(query.attributes)
    frontier: set[str] = set()
    while remaining:
        candidates = frontier & remaining
        if not candidates:
            candidates = remaining  # new connected component (or start)
        chosen = min(
            candidates,
            key=lambda a: (
                estimate_for(a, state),
                scores[a],
                appearance[a],
            ),
        )
        chosen_estimate = estimate_for(chosen, state)
        if on_chosen is not None:
            on_chosen(chosen, state)
        state.order.append(chosen)
        estimates.append((chosen, chosen_estimate))
        state.partial = max(chosen_estimate, 1.0)
        state.bound_attrs.add(chosen)
        remaining.discard(chosen)
        frontier |= neighbors[chosen]
        state.touched.update(rels_with[chosen])
    return tuple(state.order), tuple(estimates)


def plan_attribute_order_sampled(
    query: JoinQuery, stats: StatsProvider
) -> tuple[
    tuple[str, ...],
    dict[str, int],
    tuple[tuple[str, float], ...],
    dict[tuple[str, str], float],
]:
    """Greedy order descent on sampled partial-result estimates.

    At each step the estimated size of the partial result after binding
    candidate attribute ``A`` is::

        est(prefix + A) = est(prefix) * min_distinct(A) * shrink(A)

    where ``shrink(A)`` is the smallest sampled conditional selectivity
    ``P(match in f | tuple of e)`` over relation pairs ``(e, f)`` with
    ``A in e``, overlapping schemas, and ``f`` either already touched by
    the prefix (the probability mass the bound relations leave for
    ``e``'s tuples) or *also containing* ``A`` (the level's candidates
    are the intersection of the co-containing relations' value sets, so
    their cross-selectivity estimates how far below the min-distinct
    base that intersection falls — this is what lets the very first
    attribute choice see pruning, before anything is bound).  The estimate is then clamped by hard upper bounds
    whenever the relations fully covered by ``prefix + A`` span exactly
    its attributes: the covered relations' sizes (a single fully-bound
    relation bounds its own prefix paths) and the AGM sub-bound of the
    covered sub-query (:func:`~repro.core.estimates.subquery_estimates`,
    consulted for queries up to :data:`MAX_SUBQUERY_RELATIONS` relations
    wide).  The attribute minimizing the estimate is appended; ties fall
    back to the distinct-count score, then first appearance, keeping the
    result deterministic for a fixed sampler seed.

    Returns ``(order, distinct_scores, per-step estimates,
    selectivities consulted)`` so the caller can attach the evidence to
    the plan.
    """
    scores = stats.attribute_scores(query)
    relations = query.relations
    sub_bounds = _subquery_bounds(query)
    consulted: dict[tuple[str, str], float] = {}

    def sampled_estimate(attribute: str, state: _DescentState) -> float:
        shrink = 1.0
        containing = state.rels_with[attribute]
        for eid in containing:
            source = relations[eid]
            for fid in state.touched.union(containing):
                if fid == eid:
                    continue
                target = relations[fid]
                if not (source.attribute_set & target.attribute_set):
                    continue
                selectivity = stats.selectivity(source, target)
                consulted[(eid, fid)] = selectivity
                shrink = min(shrink, selectivity)
        estimate = state.partial * scores[attribute] * shrink
        return _prefix_clamp(
            relations, sub_bounds, state.bound_attrs, attribute, estimate
        )

    order, estimates = _greedy_descent(query, scores, sampled_estimate)
    return order, scores, estimates, consulted


def plan_attribute_order_feedback(
    query: JoinQuery,
    stats: StatsProvider,
    observed: Mapping[str, object],
) -> tuple[
    tuple[str, ...],
    dict[str, int],
    tuple[tuple[str, float], ...],
    tuple[tuple[str, float], ...],
    dict[tuple[str, str], float],
]:
    """Greedy order descent on *observed* execution statistics.

    The same stepwise objective as :func:`plan_attribute_order_sampled`
    — minimize the estimated partial-result size after binding each
    candidate — but where a recorded observation exists for an
    attribute it takes precedence over the sampled machinery (the
    classical optimizer feedback loop):

    * when the descent's current prefix equals the prefix the attribute
      was observed under, the estimate is ``partial * observed fan-out``
      — the measured per-prefix expansion, applied verbatim (this is
      what keeps a *confirmed-good* order stable across runs);
    * otherwise ``partial * min_distinct * observed selectivity`` — the
      level's measured pruning power, portable across positions.  A
      level observed with selectivity ~1 pruned nothing, however small
      its distinct count: exactly the decoy the min-distinct heuristic
      falls for and samples can misjudge.

    Attributes without observations fall back to the sampled estimate
    (or the min-distinct score when sampling is disabled), and every
    estimate is clamped by the same covered-relation and AGM sub-bound
    caps as the sampled descent.

    Returns ``(order, distinct_scores, per-step estimates, per-step
    baseline estimates, selectivities consulted)`` — the baseline is
    what the non-feedback formula would have estimated for each chosen
    attribute, so ``explain --feedback`` can show observed vs sampled
    side by side.
    """
    scores = stats.attribute_scores(query)
    relations = query.relations
    sampling = stats.config.sampling
    sub_bounds = _subquery_bounds(query)
    baselines: list[tuple[str, float]] = []
    consulted: dict[tuple[str, str], float] = {}

    def sampled_shrink(attribute: str, state: _DescentState) -> float:
        if not sampling:
            return 1.0
        shrink = 1.0
        containing = state.rels_with[attribute]
        for eid in containing:
            source = relations[eid]
            for fid in state.touched.union(containing):
                if fid == eid:
                    continue
                target = relations[fid]
                if not (source.attribute_set & target.attribute_set):
                    continue
                selectivity = stats.selectivity(source, target)
                consulted[(eid, fid)] = selectivity
                shrink = min(shrink, selectivity)
        return shrink

    def baseline_for(attribute: str, state: _DescentState) -> float:
        estimate = (
            state.partial
            * scores[attribute]
            * sampled_shrink(attribute, state)
        )
        return _prefix_clamp(
            relations, sub_bounds, state.bound_attrs, attribute, estimate
        )

    def estimate_for(attribute: str, state: _DescentState) -> float:
        level = observed.get(attribute)
        if level is None:
            return baseline_for(attribute, state)
        if tuple(state.order) == level.prefix:
            # The descent has reproduced the recorded prefix: the
            # measured per-prefix fan-out applies verbatim.
            estimate = state.partial * level.fanout
        else:
            estimate = state.partial * scores[attribute] * level.selectivity
        return _prefix_clamp(
            relations, sub_bounds, state.bound_attrs, attribute, estimate
        )

    def record_baseline(attribute: str, state: _DescentState) -> None:
        baselines.append((attribute, baseline_for(attribute, state)))

    order, estimates = _greedy_descent(
        query, scores, estimate_for, on_chosen=record_baseline
    )
    return order, scores, estimates, tuple(baselines), consulted


def _choose_algorithm(
    query: JoinQuery,
    cover: FractionalCover | None,
    attribute_order: Sequence[str] | None,
    backend: str | None,
    reasons: list[str],
) -> str:
    """Shape-directed algorithm selection for ``"auto"``."""
    if cover is not None:
        reasons.append(
            "caller supplied a fractional cover: Algorithm 2 (nprr) is the "
            "cover-driven executor"
        )
        return "nprr"
    if attribute_order is not None or backend is not None:
        reasons.append(
            "caller fixed an attribute order or backend: Generic Join "
            "honors both (the shape specialists derive their own)"
        )
        return "generic"
    if query.is_lw_instance():
        reasons.append(
            "query is a Loomis-Whitney instance: Algorithm 1 (lw) runs in "
            "the LW bound (Theorem 4.1)"
        )
        return "lw"
    if query.hypergraph.is_graph():
        reasons.append(
            "every relation has arity <= 2: Theorem 7.3's decomposition "
            "(arity2) has O(m) query complexity"
        )
        return "arity2"
    reasons.append(
        "general shape: Generic Join streams attribute-at-a-time within "
        "the AGM bound"
    )
    return "generic"


def _relation_backends(
    query: JoinQuery,
    order: tuple[str, ...],
    stats: StatsProvider,
    database: Database | None,
    reasons: list[str],
) -> tuple[str, tuple[tuple[str, str], ...] | None]:
    """Per-relation backend choice for Generic Join.

    Decision per relation, in priority order:

    1. **Cached-index availability** — if the ``Database`` already holds
       an index over this relation in the order the plan needs, reuse
       its kind: a free cache hit beats any rebuild.
    2. **Skew** — a heavy first index level (heavy-hitter mass at or
       above the provider's threshold) gets the hash trie: the hot
       values are probed over and over, and the trie answers in O(1)
       where the flat backends pay a log factor per probe.
    3. **Density** — all-integer first levels at least
       :data:`DENSE_FIRST_LEVEL` dense on relations of at least
       :data:`DENSE_COMPACT_RELATION` tuples get the compact backend:
       its radix/interpolated seeks need no hashing at all, and packed
       arrays are a fraction of the trie's per-node dict weight.
    4. **Size** — large low-skew relations
       (>= :data:`LARGE_FLAT_RELATION` tuples) get the compact flat
       array: one sort builds cheaper and leaner than per-tuple dict
       chains, and without hot values the log-factor probes stay spread.
    5. Default: the hash trie.

    Returns ``(backend label, per-relation pairs or None)`` — the pairs
    are ``None`` when every relation landed on the trie default, so
    plans without statistics pressure look exactly like before.
    """
    rank = {a: i for i, a in enumerate(order)}
    choices: dict[str, str] = {}
    notes: list[str] = []
    for eid, relation in query.relations.items():
        index_order = tuple(sorted(relation.attributes, key=rank.__getitem__))
        cached = None
        if database is not None and database.is_catalogued(relation):
            for kind in (
                TrieIndex.kind,
                SortedArrayIndex.kind,
                CompactArrayIndex.kind,
            ):
                if database.has_cached_index(eid, index_order, kind):
                    cached = kind
                    break
        if cached is not None:
            choices[eid] = cached
            notes.append(f"{eid}: cached {cached} index")
            continue
        profile = stats.profile(relation).attribute(index_order[0])
        if profile.heavy_mass >= stats.config.heavy_mass_threshold:
            choices[eid] = TrieIndex.kind
            notes.append(
                f"{eid}: trie ({profile.heavy_count} heavy value(s) carry "
                f"{profile.heavy_mass:.0%} of first level)"
            )
        elif (
            len(relation) >= DENSE_COMPACT_RELATION
            and profile.density >= DENSE_FIRST_LEVEL
        ):
            choices[eid] = CompactArrayIndex.kind
            notes.append(
                f"{eid}: compact ({profile.density:.0%}-dense integer "
                "first level: radix seeks beat hash probes)"
            )
        elif len(relation) >= LARGE_FLAT_RELATION:
            choices[eid] = CompactArrayIndex.kind
            notes.append(
                f"{eid}: compact ({len(relation)} low-skew tuples: packed "
                "arrays build and probe leaner than per-tuple trie inserts)"
            )
        else:
            choices[eid] = TrieIndex.kind
    kinds = set(choices.values())
    if kinds == {TrieIndex.kind}:
        reasons.append(
            "hash-trie backend: O(1) probes and precomputed counts"
        )
        return TrieIndex.kind, None
    pairs = tuple(sorted(choices.items()))
    reasons.append(
        "per-relation backends from skew, density, and cached indexes: "
        + "; ".join(notes)
    )
    if len(kinds) == 1:
        return kinds.pop(), None
    return "mixed", pairs


def _auto_shards(
    query: JoinQuery,
    order: tuple[str, ...],
    stats: StatsProvider,
    reasons: list[str],
    record: dict,
) -> int:
    """Pick a shard count from input size, parallelism, and skew.

    Serial below :data:`AUTO_SHARD_MIN_TUPLES` total input tuples (fork
    and queue overhead would dominate); otherwise one shard per available
    CPU, capped at :data:`MAX_AUTO_SHARDS` — **raised** to one more than
    the first attribute's heavy-hitter count when its heavy values carry
    at least the provider's threshold mass, so every hot value can land
    in a shard of its own (the "Skew Strikes Back" heavy/light split,
    applied to the LPT partitioner in :mod:`repro.engine.parallel`).
    """
    total = query.total_input_size()
    if total < AUTO_SHARD_MIN_TUPLES:
        reasons.append(
            f"serial: {total} input tuples < {AUTO_SHARD_MIN_TUPLES} "
            "auto-shard threshold"
        )
        return 1
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        cpus = os.cpu_count() or 1
    shards = max(1, min(MAX_AUTO_SHARDS, cpus))
    first = order[0]
    heavy_count, heavy_mass = 0, 0.0
    for relation in query.relations.values():
        if first not in relation.attribute_set:
            continue
        profile = stats.profile(relation).attribute(first)
        if profile.heavy_mass > heavy_mass:
            heavy_mass = profile.heavy_mass
            heavy_count = profile.heavy_count
    record.update(
        shard_attribute=first, shard_heavy_mass=heavy_mass, shard_cpus=cpus
    )
    if heavy_count and heavy_mass >= stats.config.heavy_mass_threshold:
        boosted = min(MAX_AUTO_SHARDS, max(shards, heavy_count + 1))
        if boosted > shards:
            reasons.append(
                f"{boosted} shard(s): {heavy_count} heavy value(s) carry "
                f"{heavy_mass:.0%} of {first}'s tuples — each gets its own "
                f"shard ({cpus} CPU(s), {total} input tuples)"
            )
            return boosted
    reasons.append(
        f"{shards} shard(s): {total} input tuples across {cpus} "
        "available CPU(s)"
    )
    return shards


def _auto_batch_size(
    query: JoinQuery,
) -> tuple[int, FractionalCover, float]:
    """Size batches from the AGM output estimate: roughly sqrt(bound),
    clamped to [:data:`MIN_AUTO_BATCH`, :data:`MAX_AUTO_BATCH`] — small
    results fit one batch, huge results amortize per-batch overhead
    without hoarding memory.  Returns the cover and bound alongside so
    the plan can reuse them instead of re-solving the LP."""
    cover, bound = best_agm_bound(query.hypergraph, query.sizes())
    size = max(MIN_AUTO_BATCH, min(MAX_AUTO_BATCH, round(bound**0.5)))
    return size, cover, bound


def _resolve_shards(
    query: JoinQuery,
    shards: int | str | None,
    order: tuple[str, ...],
    stats: StatsProvider,
    reasons: list[str],
    record: dict,
) -> int:
    if shards is None:
        return 1
    if shards == "auto":
        return _auto_shards(query, order, stats, reasons, record)
    require_positive_int(shards, "shards", " or 'auto'")
    reasons.append(f"shard count fixed by caller: {shards}")
    return shards


def _resolve_batch_size(
    query: JoinQuery, batch_size: int | str | None, reasons: list[str]
) -> tuple[int | None, FractionalCover | None, float | None]:
    """Resolve the batch size; also pass back the (cover, bound) pair the
    ``"auto"`` path had to compute, so the plan never solves the same LP
    twice."""
    if batch_size is None:
        return None, None, None
    if batch_size == "auto":
        size, auto_cover, bound = _auto_batch_size(query)
        reasons.append(f"batch size from AGM estimate: {size}")
        return size, auto_cover, bound
    require_positive_int(batch_size, "batch_size", " or 'auto'")
    reasons.append(f"batch size fixed by caller: {batch_size}")
    return batch_size, None, None


def _plan_join(
    query: JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    shards: int | str | None = None,
    batch_size: int | str | None = None,
    database: Database | None = None,
    stats: StatsProvider | None = None,
    feedback=None,
    feedback_scope: tuple = (),
    context=None,
) -> JoinPlan:
    """Produce a :class:`JoinPlan` for ``query``.

    ``algorithm`` may be any registered executor name or ``"auto"``;
    unknown names are rejected here, before any index is built.  The
    relation-size statistics are exactly what ``Database.sizes()`` reports
    for catalogued relations, so plans computed against a catalog match
    plans computed against the bound query.

    ``shards`` and ``batch_size`` populate the plan's parallel-execution
    fields: each accepts a positive int, the string ``"auto"`` (choose
    from data statistics), or ``None`` (serial / row-at-a-time).  Requests
    the engine cannot honor raise :class:`~repro.errors.PlanError`.

    ``database`` supplies the statistics cache (and cached-index
    availability for the per-relation backend choice): repeated plans
    over the same catalog reuse profiles, samples, and selectivities
    instead of rescanning the data.  ``stats`` overrides the provider
    outright — pass ``StatsProvider(config=StatsConfig(sample_size=0))``
    to disable sampling and fall back to the min-distinct heuristic, a
    provider with a different seed for reproducible experiments, or a
    bare :class:`~repro.stats.provider.StatsConfig` (wrapped here).

    ``feedback`` — a :class:`~repro.feedback.config.FeedbackConfig` —
    switches on observed-statistics precedence: when the provider holds
    recorded execution telemetry for this query (a previous run under
    feedback), the attribute order comes from
    :func:`plan_attribute_order_feedback` and the plan's statistics
    ``source`` reads ``"feedback"``.  Without recorded observations the
    flag only leaves a note in ``reasons``.  ``feedback_scope`` keys the
    observation lookup — the query layer passes its residual-filter
    signature so filtered and unfiltered executions of the same
    relations never share telemetry (their cardinalities differ).

    ``context`` — an :class:`~repro.query.context.ExecutionContext` —
    replaces the individual option keywords wholesale: when given, the
    planner reads ``algorithm``, ``cover``, ``attribute_order``,
    ``backend``, ``shards``, ``batch_size``, ``database``, ``stats``,
    and ``feedback`` from it and ignores the corresponding parameters.
    This is how the query layer (and anything else carrying a context)
    calls the planner without re-spelling the option list.
    """
    if context is not None:
        algorithm = context.algorithm
        cover = context.cover
        attribute_order = context.attribute_order
        backend = context.backend
        shards = context.shards
        batch_size = context.batch_size
        database = context.database
        stats = context.stats
        feedback = context.feedback
    # ``shards`` may arrive as a ShardSpec (the context normalizes every
    # spelling to one); the planner consumes only its count — and its
    # batch_size, when the caller left the plain one unset.  Duck-typed
    # (not isinstance) so this engine-layer module never imports the
    # query layer.
    if hasattr(shards, "count") and not isinstance(shards, (int, str)):
        spec_batch = getattr(shards, "batch_size", None)
        if batch_size is None and spec_batch is not None:
            batch_size = spec_batch
        shards = shards.count
    if algorithm not in algorithm_names():
        raise QueryError(
            f"unknown algorithm {algorithm!r}; "
            f"choose one of {algorithm_names()}"
        )
    if backend is not None:
        validate_backend(backend)
    # One shared resolution rule (with the feedback recorders): StatsConfig
    # wrapped, explicit provider as-is, else the database's, else the
    # bounded process-wide default so repeated ad-hoc plans never rescan.
    provider = resolve_provider(database, stats)
    reasons: list[str] = []
    if algorithm == "auto":
        algorithm = _choose_algorithm(
            query, cover, attribute_order, backend, reasons
        )
    else:
        reasons.append(f"algorithm {algorithm!r} fixed by caller")
    if cover is not None:
        query.validate_cover(cover)

    # Requests the executor would silently ignore are plan-time errors:
    # the plan must report what actually runs.
    order_sensitive = algorithm in ORDER_SENSITIVE
    if attribute_order is not None and not order_sensitive:
        raise PlanError(
            f"algorithm {algorithm!r} derives its own attribute order; "
            f"drop attribute_order or choose one of {ORDER_SENSITIVE}"
        )
    allowed_backends = BACKEND_CHOICES.get(algorithm, ())
    if backend is not None and backend not in allowed_backends:
        raise PlanError(
            f"algorithm {algorithm!r} cannot run on backend {backend!r}"
            + (
                f"; it supports {allowed_backends}"
                if allowed_backends
                else " (it builds no per-order indexes)"
            )
        )

    # Everything the statistics machinery contributed, for the plan's
    # PlanStatistics record; ``used`` flips when any decision consulted
    # the provider.
    record: dict = {}
    used_stats = False

    source_override: str | None = None
    if attribute_order is not None:
        order = tuple(attribute_order)
        reasons.append(f"attribute order fixed by caller: {', '.join(order)}")
    elif order_sensitive:
        used_stats = True
        observed = {}
        best_telemetry = None
        if feedback is not None:
            best_telemetry = provider.observed_telemetry(
                query, feedback_scope
            )
            if best_telemetry is not None:
                observed = {
                    level.attribute: level
                    for level in best_telemetry.levels
                }
        if observed:
            # Observed statistics take precedence over sampled ones:
            # the classical optimizer feedback loop.
            source_override = "feedback"
            with maybe_span("stats-profile", source="feedback"):
                order, scores, estimates, baselines, consulted = (
                    plan_attribute_order_feedback(query, provider, observed)
                )
            # Explore-or-pin: a proposed order we have already measured
            # as no better — or whose estimated work does not promise a
            # real improvement over the best *measured* order — is not
            # worth running.  Greedy re-estimation from a good run's
            # telemetry can produce plausible-but-worse proposals; the
            # measured history is the ground truth that stops the loop
            # from oscillating on them.
            best_order = best_telemetry.attribute_order
            best_work = best_telemetry.total_candidates
            if order != best_order:
                history = provider.observed_history(query, feedback_scope)
                tried = history.get(order)
                proposed_work = sum(estimate for _a, estimate in estimates)
                if tried is not None:
                    keep = tried.total_candidates >= best_work
                    why = (
                        f"already measured at {tried.total_candidates} "
                        f"candidate(s) vs {best_work}"
                    )
                else:
                    margin = feedback.explore_margin
                    keep = proposed_work >= margin * best_work
                    why = (
                        f"estimated work ~{proposed_work:.3g} does not "
                        f"promise improvement over measured {best_work} "
                        f"(explore margin {margin})"
                    )
                if keep:
                    reasons.append(
                        "feedback: keeping best measured order "
                        f"{', '.join(best_order)}; proposed "
                        f"{', '.join(order)} {why}"
                    )
                    order = best_order
                    # The pinned order's estimates are its measured
                    # per-level match counts — exact, so repeated runs
                    # observe no divergence and the loop stays quiet.
                    estimates = tuple(
                        (level.attribute, float(level.matches))
                        for level in best_telemetry.levels
                    )
                    baselines = ()
                else:
                    reasons.append(
                        "attribute order by observed-feedback descent: "
                        + ", ".join(
                            f"{a}(~{est:.3g})" for a, est in estimates
                        )
                    )
            else:
                reasons.append(
                    "attribute order by observed-feedback descent: "
                    + ", ".join(f"{a}(~{est:.3g})" for a, est in estimates)
                )
            record["order_estimates"] = estimates
            record["baseline_estimates"] = baselines
            record["observed_levels"] = tuple(
                (
                    level.attribute,
                    level.position,
                    level.partials,
                    level.candidates,
                    level.matches,
                )
                for level in best_telemetry.levels
            )
            if consulted:
                record["selectivities"] = tuple(
                    (src, dst, sel)
                    for (src, dst), sel in sorted(consulted.items())
                )
        elif provider.config.sampling:
            with maybe_span("stats-profile", source="sampled"):
                order, scores, estimates, consulted = (
                    plan_attribute_order_sampled(query, provider)
                )
            record["order_estimates"] = estimates
            record["selectivities"] = tuple(
                (src, dst, sel)
                for (src, dst), sel in sorted(consulted.items())
            )
            reasons.append(
                "attribute order by sampled selectivity descent: "
                + ", ".join(f"{a}(~{est:.3g})" for a, est in estimates)
            )
        else:
            scores = provider.attribute_scores(query)
            order = plan_attribute_order(query, scores)
            reasons.append(
                "attribute order by ascending distinct-count: "
                + ", ".join(f"{a}({scores[a]})" for a in order)
            )
        if feedback is not None and not observed:
            reasons.append(
                "feedback requested but no observations recorded for this "
                "query yet; planning from estimates"
            )
        record["distinct_counts"] = tuple(
            (a, scores[a]) for a in order
        )
    else:
        order = query.attributes
        reasons.append(
            f"{algorithm} derives its own order; keeping query order"
        )

    relation_backends: tuple[tuple[str, str], ...] | None = None
    if backend is not None:
        reasons.append(f"backend {backend!r} fixed by caller")
    elif algorithm == "leapfrog":
        backend = SortedArrayIndex.kind
        reasons.append(
            "sorted flat-array backend: leapfrog seeks need sorted runs"
        )
    elif algorithm == "generic":
        used_stats = True
        backend, relation_backends = _relation_backends(
            query, order, provider, database, reasons
        )
    elif algorithm == "nprr":
        backend = TrieIndex.kind
        reasons.append(
            "hash-trie backend: O(1) probes and precomputed counts"
        )
    else:
        backend = NO_BACKEND
        reasons.append(f"{algorithm} builds no per-order indexes")

    if shards == "auto":
        used_stats = True
    shard_count = _resolve_shards(
        query, shards, order, provider, reasons, record
    )
    batch, auto_cover, bound = _resolve_batch_size(
        query, batch_size, reasons
    )

    statistics = None
    if used_stats:
        statistics = PlanStatistics(
            source=(
                source_override
                if source_override is not None
                else "sampled"
                if provider.config.sampling
                else "heuristic"
            ),
            seed=provider.config.seed,
            sample_size=provider.config.sample_size,
            heavy_hitters=provider.heavy_hitters(query),
            **record,
        )

    # Only the cover-driven algorithms pay for the cover LP at plan time
    # (their executors would solve the same LP anyway); everyone else
    # defers the AGM bound until someone inspects the plan — unless the
    # auto-batch path already solved it above, in which case it is reused.
    plan_cover = cover
    if algorithm in ("nprr", "arity2") and cover is None:
        if auto_cover is not None:
            plan_cover = auto_cover
        else:
            plan_cover, bound = best_agm_bound(
                query.hypergraph, query.sizes()
            )
    return JoinPlan(
        query=query,
        algorithm=algorithm,
        attribute_order=order,
        backend=backend,
        cover=plan_cover,
        reasons=tuple(reasons),
        shards=shard_count,
        batch_size=batch,
        relation_backends=relation_backends,
        statistics=statistics,
        _bound=bound,
    )


def plan_join(
    query: JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    shards: int | str | None = None,
    batch_size: int | str | None = None,
    database: Database | None = None,
    stats: StatsProvider | None = None,
    feedback=None,
    feedback_scope: tuple = (),
    context=None,
) -> JoinPlan:
    # The planning phase of any traced execution: one ambient span (one
    # context-variable read when tracing is off) around the whole
    # decision procedure, annotated with the resolved choices.
    with maybe_span("plan") as span:
        plan = _plan_join(
            query,
            algorithm,
            cover=cover,
            attribute_order=attribute_order,
            backend=backend,
            shards=shards,
            batch_size=batch_size,
            database=database,
            stats=stats,
            feedback=feedback,
            feedback_scope=feedback_scope,
            context=context,
        )
        if span is not None:
            span.meta.update(
                algorithm=plan.algorithm,
                order=",".join(plan.attribute_order),
                backend=plan.backend,
            )
        return plan


plan_join.__doc__ = _plan_join.__doc__
