"""Compact flat-array trie indexes: the ``"compact"`` engine backend.

The hash trie (:mod:`repro.relations.trie`) realizes the paper's
search-tree properties (ST1)-(ST3) with one Python object and one dict
per node — every ``child`` probe chases pointers and every node costs
hundreds of bytes.  The sorted backend
(:mod:`repro.relations.sorted_index`) flattens the relation into one
tuple array but still pays a whole-array binary search per probe and
stores every row as a Python tuple.  This module takes the
representation the radix/compact-trie literature argues for ("Worst-Case
Optimal Radix Triejoin", Fekete et al.; "Optimal Joins using Compact
Data Structures", Arroyuelo et al.): **one contiguous value run per trie
level** plus **child-offset arrays** stitching adjacent levels together
— the classic CSR (compressed sparse row) encoding of the trie.

Layout
------
For an index over attributes ``(A_1, .., A_k)``:

* ``levels[i]`` is a flat ``array('q')`` holding, for every distinct
  length-``i`` prefix, the sorted run of distinct ``A_{i+1}`` values
  extending it — runs are concatenated in lexicographic prefix order.
  Columns with non-integer (or overflowing) values fall back to a plain
  tuple holding the original objects; everything else is identical.
* ``offsets[i]`` (``i < k-1``) maps a *position* ``p`` in ``levels[i]``
  to the half-open slice ``levels[i+1][offsets[i][p] : offsets[i][p+1]]``
  of its children.

There are **no per-node objects**: a node is the slice ``(level, lo,
hi)`` meaning "the children of this prefix occupy ``levels[level][lo:
hi]``".  The root is ``(0, 0, len(levels[0]))``; a full path ends in the
sentinel ``(k, p, p)``.  Because every position holds one *distinct*
child value, ``fanout`` is the exact ``hi - lo`` in O(1) — the compact
backend is the only one whose :meth:`~CompactArrayIndex.fanout_hint` is
both exact *and* free, and (ST2) counts project a slice through the
offset arrays in O(depth) arithmetic, no per-path galloping.

Seeks
-----
``child`` locates a value inside a run with, in order of preference:

1. **radix lookup** — when the run is *dense* (``max - min + 1 ==
   length``, only possible for packed integer runs) the value's position
   is ``lo + (value - min)``: direct offset indexing, no search at all;
2. **interpolated gallop** — when the run's value span is within
   :data:`DENSITY_THRESHOLD` times its length, the probe starts at the
   interpolated position and gallops to bracket the value;
3. **galloping binary search** — exponential probing from the last hit
   at this level (the leapfrog seek pattern), finished by
   :func:`bisect.bisect_left` inside the bracket.

The per-level last-hit hint is a *starting position only*: a stale or
concurrently clobbered hint changes the number of probes, never the
answer, so sharing one index across threads stays correct.

:class:`CompactTrieIterator` provides the same ``open/up/key/next/seek``
cursor protocol as :class:`~repro.relations.sorted_index.
SortedTrieIterator`, so Leapfrog Triejoin runs over compact indexes
unchanged — ``next()`` is a bare position increment (values in a run are
already distinct; no run-end galloping) and ``seek`` uses the same
dense-run radix shortcut as ``child``.

The class is registered in the engine's backend registry by
:mod:`repro.engine.backends` (imported by any ``import repro``), under
the kind string ``"compact"``.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relations.relation import Relation, Row, Value

__all__ = [
    "DENSITY_THRESHOLD",
    "CompactArrayIndex",
    "CompactTrieIterator",
]

#: A position in a :class:`CompactArrayIndex`: ``(level, lo, hi)`` — the
#: node's children occupy ``levels[level][lo:hi]``.
SliceNode = tuple[int, int, int]

#: A run whose integer value span is at most this many times its length
#: is "near-dense": ``child`` starts from the interpolated position
#: instead of the last-hit hint.  A span *equal* to the length means the
#: run is exactly the integer interval ``[min, max]`` and lookups become
#: direct offset arithmetic (the radix fast path).
DENSITY_THRESHOLD = 4


def _rebuild_compact(attributes, source_name, size, levels, packed, offsets):
    """Pickle constructor: reattach prebuilt arrays, skip the build."""
    index = CompactArrayIndex.__new__(CompactArrayIndex)
    index.attributes = attributes
    index._source_name = source_name
    index._size = size
    index._levels = levels
    index._packed = packed
    index._offsets = offsets
    index._hints = [0] * len(attributes)
    return index


class CompactArrayIndex:
    """A search tree stored as packed per-level value runs (CSR trie).

    Implements the same (ST1)-(ST3) protocol as
    :class:`~repro.relations.trie.TrieIndex` and
    :class:`~repro.relations.sorted_index.SortedArrayIndex`, pluggable
    behind :class:`repro.engine.backends.IndexBackend`.  Build cost is
    one ``O(N log N)`` sort plus one linear pass; the resident footprint
    is 8 bytes per distinct prefix per level (plus the offset arrays)
    instead of per-node Python objects, and :meth:`nbytes` reports it
    exactly from ``array.buffer_info``.
    """

    __slots__ = (
        "attributes",
        "_levels",
        "_packed",
        "_offsets",
        "_hints",
        "_source_name",
        "_size",
    )

    #: Backend registry key (see :mod:`repro.engine.backends`).
    kind = "compact"

    def __init__(
        self, relation: Relation, attribute_order: Iterable[str]
    ) -> None:
        attrs = tuple(attribute_order)
        if set(attrs) != relation.attribute_set or len(attrs) != len(
            relation.attributes
        ):
            raise SchemaError(
                f"attribute order {attrs!r} is not a permutation of "
                f"{relation.attributes!r}"
            )
        self.attributes = attrs
        self._source_name = relation.name
        idx = relation.positions(attrs)
        rows = sorted(tuple(row[i] for i in idx) for row in relation.tuples)
        self._size = len(rows)
        arity = len(attrs)
        # CSR build: walk the sorted distinct rows once; at the first
        # column where a row differs from its predecessor, every deeper
        # column opens a fresh run.  ``starts[i][p]`` records where the
        # children of levels[i]'s position p begin in levels[i+1].
        levels: list[list[Value]] = [[] for _ in range(arity)]
        starts: list[list[int]] = [[] for _ in range(max(arity - 1, 0))]
        previous: Row | None = None
        for row in rows:
            if previous is None:
                diverge = 0
            else:
                diverge = arity
                for i in range(arity):
                    if row[i] != previous[i]:
                        diverge = i
                        break
            for i in range(diverge, arity):
                if i < arity - 1:
                    starts[i].append(len(levels[i + 1]))
                levels[i].append(row[i])
            previous = row
        packed: list[bool] = []
        columns: list[Sequence[Value]] = []
        for column in levels:
            try:
                # array('q') packs plain ints (bools coerce to 0/1 —
                # identical under the engine's set semantics, where
                # True and 1 already collapse in Relation storage).
                columns.append(array("q", column))
                packed.append(True)
            except (TypeError, OverflowError):
                columns.append(tuple(column))
                packed.append(False)
        self._levels = tuple(columns)
        self._packed = tuple(packed)
        self._offsets = tuple(
            array("q", starts[i] + [len(levels[i + 1])])
            for i in range(arity - 1)
        )
        self._hints = [0] * arity

    # -- basic protocol ----------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of levels (= attributes) of the index."""
        return len(self.attributes)

    @property
    def root(self) -> SliceNode:
        """The whole first-level run (children of the empty prefix)."""
        if not self._levels:
            return (0, 0, 0)
        return (0, 0, len(self._levels[0]))

    def __len__(self) -> int:
        """Number of indexed tuples (rows are distinct by construction)."""
        return self._size

    def __repr__(self) -> str:
        return (
            f"CompactArrayIndex({self._source_name!r}, "
            f"order={self.attributes!r}, |tuples|={len(self)})"
        )

    def __reduce__(self):
        # Ship the prebuilt arrays (they pickle as raw machine words),
        # not the source relation: shard workers reattach without
        # re-sorting.  Hints are probe-start state, not data — reset.
        return (
            _rebuild_compact,
            (
                self.attributes,
                self._source_name,
                self._size,
                self._levels,
                self._packed,
                self._offsets,
            ),
        )

    def cursor(self) -> "CompactTrieIterator":
        """A fresh leapfrog cursor sharing this index's level arrays."""
        return CompactTrieIterator(self)

    def nbytes(self) -> int:
        """Resident bytes of the level and offset arrays.

        Exact (``buffer_info``) for packed columns; unpacked columns
        report their tuple container only — the value objects are
        shared with the source relation, mirroring how the other
        backends' estimates exclude them.
        """
        total = 0
        for column, packed in zip(self._levels, self._packed):
            if packed:
                _address, length = column.buffer_info()
                total += length * column.itemsize
            else:
                total += sys.getsizeof(column)
        for offsets in self._offsets:
            _address, length = offsets.buffer_info()
            total += length * offsets.itemsize
        return total

    # -- (ST1): prefix membership -------------------------------------------

    def child(self, node: SliceNode | None, value: Value) -> SliceNode | None:
        """The child of ``node`` along ``value`` (one (ST1) step)."""
        if node is None:
            return None
        level, lo, hi = node
        if level >= len(self.attributes):
            return None
        position = self._find(level, lo, hi, value)
        if position < 0:
            return None
        nxt = level + 1
        if nxt == len(self.attributes):
            return (nxt, position, position)
        offsets = self._offsets[level]
        return (nxt, offsets[position], offsets[position + 1])

    def walk(self, prefix: Iterable[Value]) -> SliceNode | None:
        """Follow ``prefix`` values from the root; ``None`` if absent."""
        return self.descend(self.root, prefix)

    def contains_prefix(self, prefix: Iterable[Value]) -> bool:
        """(ST1) membership of a prefix tuple in the projected relation."""
        return self.walk(prefix) is not None

    def descend(
        self, node: SliceNode | None, values: Iterable[Value]
    ) -> SliceNode | None:
        """Continue a walk from an interior ``node`` (ST1, resumed)."""
        current = node
        for value in values:
            current = self.child(current, value)
            if current is None:
                return None
        return current

    # -- (ST2): projected-section cardinality ---------------------------------

    def count(self, node: SliceNode | None, depth: int) -> int:
        """(ST2) number of distinct length-``depth`` paths below ``node``.

        O(depth): project the slice bounds through the offset arrays —
        no per-path work, unlike the sorted backend's gallop-per-path.
        """
        if node is None or depth < 0:
            return 0
        if depth == 0:
            return 1
        level, lo, hi = node
        if level + depth > len(self.attributes):
            return 0
        offsets = self._offsets
        for i in range(level, level + depth - 1):
            table = offsets[i]
            lo = table[lo]
            hi = table[hi]
        return hi - lo

    def prefix_count(self, prefix: Iterable[Value], depth: int) -> int:
        """(ST1)+(ST2) in one call: walk ``prefix`` then count at ``depth``."""
        return self.count(self.walk(prefix), depth)

    # -- (ST3): enumeration ---------------------------------------------------

    def items(
        self, node: SliceNode | None
    ) -> Iterator[tuple[Value, SliceNode]]:
        """``(value, child slice)`` pairs below ``node``, in sorted order."""
        if node is None:
            return
        level, lo, hi = node
        arity = len(self.attributes)
        if level >= arity:
            return
        column = self._levels[level]
        if level + 1 == arity:
            for position in range(lo, hi):
                yield column[position], (level + 1, position, position)
        else:
            offsets = self._offsets[level]
            for position in range(lo, hi):
                yield column[position], (
                    level + 1,
                    offsets[position],
                    offsets[position + 1],
                )

    def fanout(self, node: SliceNode | None) -> int:
        """Number of distinct next-level values below ``node`` (exact)."""
        if node is None:
            return 0
        _level, lo, hi = node
        return hi - lo

    def fanout_hint(self, node: SliceNode | None) -> int:
        """O(1) *exact* fanout: each slice position is one distinct child.

        The compact layout makes the hint and the true fanout the same
        number, so smallest-first ranking over compact indexes matches
        the hash trie's exactly — which is what keeps telemetry counts
        identical across the two backends.
        """
        if node is None:
            return 0
        _level, lo, hi = node
        return hi - lo

    def paths(self, node: SliceNode | None, depth: int) -> Iterator[Row]:
        """(ST3) yield every distinct length-``depth`` tuple below ``node``.

        Output-linear, sorted order; an explicit frame stack bounds
        arity by memory, not Python's recursion limit.
        """
        if node is None or depth < 0:
            return
        if depth == 0:
            yield ()
            return
        level, lo, hi = node
        if level + depth > len(self.attributes):
            return
        levels = self._levels
        offsets = self._offsets
        target = level + depth
        prefix: list[Value] = []
        stack: list[list[int]] = [[level, lo, hi]]
        while stack:
            frame = stack[-1]
            at, position, end = frame
            if position >= end:
                stack.pop()
                if prefix:
                    prefix.pop()
                continue
            frame[1] = position + 1
            value = levels[at][position]
            if at + 1 == target:
                yield (*prefix, value)
            else:
                prefix.append(value)
                table = offsets[at]
                stack.append([at + 1, table[position], table[position + 1]])

    def tuples(self) -> Iterator[Row]:
        """All indexed tuples, in index attribute order (sorted)."""
        if not self.attributes:
            return iter([()] * self._size)
        return self.paths(self.root, len(self.attributes))

    def to_relation(self, name: str | None = None) -> Relation:
        """Materialize the index back into a :class:`Relation`."""
        return Relation(
            name if name is not None else self._source_name,
            self.attributes,
            self.tuples(),
        )

    # -- run search ------------------------------------------------------------

    def _find(self, level: int, lo: int, hi: int, value: Value) -> int:
        """Position of ``value`` in ``levels[level][lo:hi]``, or ``-1``.

        Dense runs answer by offset arithmetic; near-dense runs start
        from the interpolated position; everything else gallops from the
        level's last hit.  The hint update is best-effort shared state —
        it biases the next probe's start, never its result.
        """
        if lo >= hi:
            return -1
        column = self._levels[level]
        if self._packed[level] and isinstance(value, int):
            minimum = column[lo]
            if value < minimum or value > column[hi - 1]:
                return -1
            length = hi - lo
            span = column[hi - 1] - minimum + 1
            if span == length:
                # Dense run == the integer interval [min, max]: the
                # value's position is determined, no search at all.
                return lo + (value - minimum)
            if span <= DENSITY_THRESHOLD * length:
                start = lo + (value - minimum) * (length - 1) // span
            else:
                start = self._hints[level]
        else:
            start = self._hints[level]
        position = self._gallop(column, lo, hi, start, value)
        if position < hi and column[position] == value:
            self._hints[level] = position
            return position
        self._hints[level] = position if position < hi else hi - 1
        return -1

    def _seek_position(
        self, level: int, lo: int, hi: int, start: int, value: Value
    ) -> int:
        """Leftmost position in ``[start, hi)`` with ``column >= value``
        (the cursor seek primitive; dense runs skip the search)."""
        column = self._levels[level]
        if self._packed[level] and isinstance(value, int):
            minimum = column[lo]
            if value > column[hi - 1]:
                return hi
            if value <= minimum:
                return start
            if column[hi - 1] - minimum + 1 == hi - lo:
                position = lo + (value - minimum)
                return position if position > start else start
        return self._gallop(column, lo, hi, start, value)

    @staticmethod
    def _gallop(
        column: Sequence[Value], lo: int, hi: int, start: int, value: Value
    ) -> int:
        """Leftmost index in ``[lo, hi]`` with ``column[index] >= value``.

        Exponential probing outward from ``start`` brackets the value in
        O(log distance) steps, then :func:`bisect.bisect_left` finishes
        inside the bracket (at C speed for packed arrays).
        """
        if start < lo:
            start = lo
        elif start >= hi:
            start = hi - 1
        if column[start] < value:
            step = 1
            low = start + 1
            probe = start + 1
            while probe < hi and column[probe] < value:
                low = probe + 1
                probe += step
                step <<= 1
            high = probe if probe < hi else hi
        else:
            step = 1
            high = start
            probe = start - 1
            while probe >= lo and column[probe] >= value:
                high = probe
                probe -= step
                step <<= 1
            low = probe + 1 if probe >= lo else lo
        return bisect_left(column, value, low, high)


class CompactTrieIterator:
    """Veldhuizen-style ``open/up/key/next/seek`` cursor over a
    :class:`CompactArrayIndex`.

    State per open level is the run slice ``[lo, hi)`` plus the current
    position.  Because a run holds *distinct* values, :meth:`next` is a
    bare increment — the sorted-array cursor's run-end galloping has no
    counterpart here — and :meth:`seek` gallops (or radix-jumps, on
    dense runs) forward from the current position, the leapfrog pattern.
    """

    __slots__ = ("_index", "_stack", "_lo", "_hi", "_pos", "at_end")

    def __init__(self, index: CompactArrayIndex) -> None:
        self._index = index
        # Stack of (lo, hi, pos) saved per open ancestor level.
        self._stack: list[tuple[int, int, int]] = []
        self._lo = 0
        self._hi = 0
        self._pos = 0
        self.at_end = len(index) == 0

    @property
    def depth(self) -> int:
        """Number of currently open levels (0 = at the root)."""
        return len(self._stack)

    def key(self):
        """The key at the current position of the open level."""
        return self._index._levels[self.depth - 1][self._pos]

    def open(self) -> None:
        """Descend into the children run of the current position."""
        index = self._index
        depth = self.depth
        if depth == 0:
            root = index.root
            lo, hi = root[1], root[2]
        elif depth < len(index.attributes):
            offsets = index._offsets[depth - 1]
            lo, hi = offsets[self._pos], offsets[self._pos + 1]
        else:  # opening past the last level: an empty run
            lo = hi = 0
        self._stack.append((self._lo, self._hi, self._pos))
        self._lo = lo
        self._hi = hi
        self._pos = lo
        self.at_end = self._pos >= self._hi

    def up(self) -> None:
        """Return to the parent level (restoring its position)."""
        self._lo, self._hi, self._pos = self._stack.pop()
        self.at_end = False

    def next(self) -> None:
        """Advance to the next distinct key (a position increment)."""
        self._pos += 1
        self.at_end = self._pos >= self._hi

    def seek(self, target) -> None:
        """Gallop (or radix-jump) to the first key ``>= target``."""
        pos = self._pos
        if pos >= self._hi:
            self.at_end = True
            return
        level = self.depth - 1
        if self._index._levels[level][pos] >= target:
            return
        self._pos = self._index._seek_position(
            level, self._lo, self._hi, pos, target
        )
        self.at_end = self._pos >= self._hi
