"""Parallel execution: batching, first-attribute sharding, async delivery.

PR 1 put every algorithm behind one streaming ``iter_join()`` interface;
this module scales that interface out without touching any executor:

* :func:`batches` — the ``batches(n)`` adapter over the executor
  protocol: drive any streaming join in fixed-size row batches, so
  network sinks and downstream operators amortize per-row overhead;
* :func:`shard_join` — first-attribute sharding.  Partition the values
  of the planner-chosen first attribute into ``k`` disjoint groups
  (balanced by estimated per-value work), run the *whole engine* once
  per shard, and union the disjoint result streams.  Sharding on the
  first attribute of any WCOJ order is embarrassingly parallel and
  preserves the AGM worst-case guarantee per shard — each shard is just
  the same query over restricted relations ("Skew Strikes Back",
  arXiv:1310.3314; Ngo's survey, arXiv:1803.09930) — so the union is
  exactly the serial result, order aside;
* :func:`aiter_join` — an ``async`` wrapper for event-loop servers: the
  blocking generator runs on a worker thread, rows are handed to the
  loop a batch at a time.

Shard execution modes (``mode=`` on :func:`shard_join`):

``"process"``
    A ``multiprocessing`` pool, one task per shard — true parallelism
    for CPU-bound joins.  Shard queries are pickled to the workers
    (:class:`~repro.relations.relation.Relation` and
    :class:`~repro.core.query.JoinQuery` define ``__reduce__`` for
    exactly this); each worker materializes its shard and the parent
    streams the per-shard results as they arrive, in completion order.
``"thread"``
    A thread pool feeding a bounded queue — no pickling requirement and
    row-level streaming, the fallback for unpicklable values.
``"serial"``
    Shards run one after another in-process — deterministic, zero
    overhead, the baseline the parity tests compare against.
``"auto"``
    ``"process"`` when the shard payloads pickle, else ``"thread"``;
    ``"serial"`` when only one shard remains after value partitioning.

Every public function validates its arguments *eagerly* (raising
:class:`~repro.errors.PlanError` / :class:`~repro.errors.QueryError`
before returning an iterator), so misconfiguration surfaces at the call
site, not at first ``next()``.
"""

from __future__ import annotations

import itertools
import pickle
import queue as queue_module
import threading
import time
from collections import Counter
from collections.abc import AsyncIterator, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.aggregate.fold import Folder, fold_state
from repro.core.query import JoinQuery
from repro.engine.executors import NATIVE_FOLD
from repro.engine.planner import plan_join
from repro.errors import PlanError, require_positive_int
from repro.feedback.resharding import ShardPlanEntry, expand_shards
from repro.feedback.telemetry import ShardObservation, feedback_scope
from repro.hypergraph.covers import FractionalCover
from repro.observe.tracing import Span, SpanContext, Tracer
from repro.relations.relation import Relation, Row, Value
from repro.stats.provider import resolve_provider

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "SHARD_MODES",
    "ShardJob",
    "ShardSlice",
    "aiter_join",
    "batches",
    "iter_shard_rows",
    "plan_shards",
    "shard_fold",
    "shard_join",
    "shard_query",
]

#: Rows per batch when no explicit batch size is requested.
DEFAULT_BATCH_SIZE = 1024

#: Recognized ``mode=`` values for :func:`shard_join`.
SHARD_MODES = ("auto", "process", "thread", "serial")

#: Rows buffered per queue message in thread mode (amortizes queue
#: synchronization without delaying delivery noticeably).
_THREAD_CHUNK = 256


def _as_query(relations: Sequence[Relation] | JoinQuery) -> JoinQuery:
    # Mirrors api._as_query; api.py imports this module, so the helper
    # lives here to avoid the cycle.
    return (
        relations
        if isinstance(relations, JoinQuery)
        else JoinQuery(list(relations))
    )


# ---------------------------------------------------------------------------
# Batched consumption
# ---------------------------------------------------------------------------


def batches(
    source: Iterable[Row], size: int = DEFAULT_BATCH_SIZE
) -> Iterator[list[Row]]:
    """Adapt a streaming join into fixed-size row batches.

    ``source`` is anything yielding rows — an executor (anything with
    ``iter_join()``), a :meth:`JoinPlan.iter_rows` stream, or a plain
    iterable.  Yields lists of exactly ``size`` rows, except the final
    batch which may be shorter; never yields an empty batch.  The source
    is consumed lazily, one batch ahead of the consumer, so early
    termination stops the underlying search.

    >>> batched = batches(iter([(1,), (2,), (3,)]), size=2)
    >>> [len(b) for b in batched]
    [2, 1]
    """
    require_positive_int(size, "batch size")
    rows = source.iter_join() if hasattr(source, "iter_join") else iter(source)
    return _batches(rows, size)


def _batches(rows: Iterator[Row], size: int) -> Iterator[list[Row]]:
    while True:
        batch = list(itertools.islice(rows, size))
        if not batch:
            return
        yield batch


# ---------------------------------------------------------------------------
# First-attribute sharding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSlice:
    """One shard: a set of values of the sharded attribute, plus the
    planner's work estimate used to balance the partition.

    ``weight`` is the product over relations containing ``attribute`` of
    that value's tuple frequency — a cheap proxy for the top-level
    expansion work the shard will do (exact for a single-attribute
    query, an upper-bound flavor of the AGM product otherwise).
    """

    attribute: str
    values: frozenset[Value]
    weight: int


def plan_shards(
    query: JoinQuery, shards: int, attribute: str | None = None
) -> tuple[ShardSlice, ...]:
    """Partition an attribute's candidate values into balanced shards.

    The candidate set is the *intersection* of the value sets that the
    relations containing ``attribute`` present — values outside it
    cannot appear in any output row, so they are dropped outright (the
    same elimination the serial engine performs at its top level).
    Values are then distributed over at most ``shards`` groups by greedy
    longest-processing-time assignment on the per-value work estimate,
    so a skewed (Zipf-heavy) attribute does not put all its work in one
    shard.  Returns only non-empty shards; the result is deterministic.

    ``attribute`` defaults to the query's first attribute; pass
    ``plan.attribute_order[0]`` to shard on the planner's choice.
    Sharding is *correct* for any attribute — disjoint value groups give
    disjoint output slices whose union is the full join — only balance
    depends on the choice.
    """
    require_positive_int(shards, "shards")
    if attribute is None:
        attribute = query.attributes[0]
    participants = [
        rel
        for rel in query.relations.values()
        if attribute in rel.attribute_set
    ]
    if not participants:
        raise PlanError(
            f"cannot shard on {attribute!r}: no relation contains it "
            f"(query attributes: {query.attributes})"
        )

    counts: list[Counter] = []
    for rel in participants:
        position = rel.position(attribute)
        counts.append(Counter(row[position] for row in rel.tuples))
    candidates = set(counts[0])
    for counter in counts[1:]:
        candidates &= set(counter)
    if not candidates:
        return ()

    def work(value: Value) -> int:
        weight = 1
        for counter in counts:
            weight *= counter[value]
        return weight

    weights = {value: work(value) for value in candidates}
    # Greedy LPT: heaviest value first, into the currently lightest bin.
    ranked = sorted(candidates, key=lambda v: (-weights[v], repr(v)))
    bins: list[tuple[list[Value], int]] = [([], 0) for _ in range(shards)]
    for value in ranked:
        index = min(range(len(bins)), key=lambda i: bins[i][1])
        values, weight = bins[index]
        values.append(value)
        bins[index] = (values, weight + weights[value])
    return tuple(
        ShardSlice(attribute, frozenset(values), weight)
        for values, weight in bins
        if values
    )


def shard_query(query: JoinQuery, spec: ShardSlice) -> JoinQuery:
    """Restrict ``query`` to one shard's slice of the data.

    Every relation containing the sharded attribute keeps only the
    tuples whose value falls in ``spec.values``; relations not
    containing it are shared untouched.  The result is an ordinary
    :class:`JoinQuery` — same hypergraph, restricted instance — so any
    algorithm, order, and backend apply per shard unchanged.
    """
    return _shard_queries(query, (spec,))[0]


def _shard_queries(
    query: JoinQuery, specs: Sequence[ShardSlice]
) -> list[JoinQuery]:
    """Build every shard's restricted query in one pass over the data.

    Each participant relation is scanned once, bucketing rows by a
    value -> shard-index map — O(N) total instead of the O(k*N) that k
    independent :func:`shard_query` filters would cost.  Rows whose
    value belongs to no shard (outside the candidate intersection) are
    dropped, exactly as the per-spec filter drops them.

    Relations *not* containing the attribute are shared by reference
    across all shard queries — free in thread/serial mode; process mode
    still serializes them into each shard's payload (a known k-fold
    cost for non-participant relations; a pool initializer shipping the
    shared part once is the upgrade path).
    """
    if not specs:
        return []
    attribute = specs[0].attribute
    shard_of = {
        value: index
        for index, spec in enumerate(specs)
        for value in spec.values
    }
    per_shard_relations: list[list[Relation]] = [[] for _ in specs]
    for rel in query.relations.values():
        if attribute not in rel.attribute_set:
            for bucket in per_shard_relations:
                bucket.append(rel)  # shared untouched
            continue
        position = rel.position(attribute)
        rows: list[list[Row]] = [[] for _ in specs]
        for row in rel.tuples:
            index = shard_of.get(row[position])
            if index is not None:
                rows[index].append(row)
        for bucket, shard_rows in zip(per_shard_relations, rows):
            bucket.append(Relation(rel.name, rel.attributes, shard_rows))
    return [JoinQuery(relations) for relations in per_shard_relations]


@dataclass(frozen=True)
class _ShardTask:
    """A picklable unit of shard work: the restricted query plus the
    execution choices the parent already resolved.

    ``filters`` are the query layer's residual predicates; they pickle
    when their payloads do (:class:`~repro.query.predicates.ValueIn`
    always does, a lambda-backed callback does not — the driver then
    falls back to thread mode exactly as for unpicklable values).
    """

    query: JoinQuery
    algorithm: str
    cover: FractionalCover | None
    attribute_order: tuple[str, ...] | None
    backend: str | None
    filters: tuple[tuple[str, object], ...] | None = None


def _shard_rows(task: _ShardTask) -> Iterator[Row]:
    """Stream one shard in-process (the per-worker primitive).

    A shard with any empty relation joins to nothing — skip planning
    entirely (this also keeps per-shard AGM machinery away from
    zero-size inputs).  Indexes are always built fresh from the
    restricted relations; a shared :class:`Database` cache would serve
    *full*-relation indexes under the same names and break parity.
    """
    if any(len(rel) == 0 for rel in task.query.relations.values()):
        return iter(())
    plan = plan_join(
        task.query,
        task.algorithm,
        cover=task.cover,
        attribute_order=task.attribute_order,
        backend=task.backend,
    )
    filters = dict(task.filters) if task.filters else None
    return plan.iter_rows(filters=filters)


def _run_shard(task: _ShardTask) -> list[Row]:
    """Materialize one shard's result (the worker-side unit of work)."""
    return list(_shard_rows(task))


def _run_shard_pickled(payload: bytes) -> list[Row]:
    """Process-pool entry point: the parent serialized each task once
    while probing picklability, so workers receive those same bytes and
    deserialize here — the dataset never pays a second pickling pass."""
    return _run_shard(pickle.loads(payload))


def _run_shard_pickled_timed(
    indexed: tuple[int, bytes],
) -> tuple[int, list[Row], float]:
    """Measured process-pool entry point for feedback runs: results come
    back tagged with the shard index (``imap_unordered`` loses order)
    and the shard's wall time as seen by the worker."""
    index, payload = indexed
    started = time.perf_counter()
    rows = _run_shard(pickle.loads(payload))
    return index, rows, time.perf_counter() - started


def _run_shard_pickled_traced(
    indexed: tuple[int, bytes, SpanContext],
) -> tuple[int, list[Row], float, Span, SpanContext]:
    """Traced process-pool entry point.

    The worker builds its own local :class:`Tracer`, runs the shard
    under an activated ``shard`` span (so the shard's plan and
    index-build spans nest inside it), and ships the *finished* span —
    plain picklable data — back alongside the parent's
    :class:`SpanContext`, which it echoes untouched; the parent
    validates the context's trace id and stitches the span under its
    open ``execute`` span.
    """
    index, payload, span_context = indexed
    local = Tracer(name=f"shard-{index}")
    started = time.perf_counter()
    with local.activate(), local.span("shard", shard=index) as span:
        rows = _run_shard(pickle.loads(payload))
        span.meta["rows"] = len(rows)
    return (
        index,
        rows,
        time.perf_counter() - started,
        local.roots[0],
        span_context,
    )


def iter_shard_rows(
    query: JoinQuery,
    spec: ShardSlice,
    algorithm: str = "generic",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    filters=None,
) -> Iterator[Row]:
    """Stream a single shard of ``query`` in-process.

    Building block for custom drivers (and the parallel benchmark's
    per-shard critical-path timing); :func:`shard_join` is the
    end-to-end driver.
    """
    task = _ShardTask(
        query=shard_query(query, spec),
        algorithm=algorithm,
        cover=cover,
        attribute_order=(
            tuple(attribute_order) if attribute_order is not None else None
        ),
        backend=backend,
        filters=tuple(filters.items()) if filters else None,
    )
    return _shard_rows(task)


def _iter_serial(
    tasks: list[_ShardTask],
    times: dict[int, tuple[float, int]] | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Row]:
    if times is None and tracer is None:
        for task in tasks:
            yield from _shard_rows(task)
        return
    # Measured runs stay streaming: the clock spans start-to-exhaustion
    # (like the thread workers, whose emits block on a slow consumer),
    # so downstream cost shows up uniformly per row across shards and
    # relative hot-shard comparisons stay meaningful.  A traced run
    # opens one ``shard`` span per task — activated, so the shard's
    # plan and index-build spans nest inside it.
    for index, task in enumerate(tasks):
        started = time.perf_counter()
        count = 0
        if tracer is None:
            for row in _shard_rows(task):
                count += 1
                yield row
        else:
            with tracer.span("shard", shard=index) as span:
                with tracer.activate():
                    rows = _shard_rows(task)
                for row in rows:
                    count += 1
                    yield row
                span.meta["rows"] = count
        if times is not None:
            times[index] = (time.perf_counter() - started, count)


def _iter_process(
    payloads: list[bytes],
    workers: int,
    times: dict[int, tuple[float, int]] | None = None,
    tracer: Tracer | None = None,
    span_context: SpanContext | None = None,
) -> Iterator[Row]:
    import multiprocessing

    context = multiprocessing.get_context()
    with context.Pool(processes=workers) as pool:
        if tracer is not None:
            traced = [
                (index, payload, span_context)
                for index, payload in enumerate(payloads)
            ]
            for index, rows, seconds, span, echoed in pool.imap_unordered(
                _run_shard_pickled_traced, traced
            ):
                if times is not None:
                    times[index] = (seconds, len(rows))
                tracer.attach(span, echoed)
                yield from rows
            return
        if times is None:
            for rows in pool.imap_unordered(_run_shard_pickled, payloads):
                yield from rows
            return
        indexed = list(enumerate(payloads))
        for index, rows, seconds in pool.imap_unordered(
            _run_shard_pickled_timed, indexed
        ):
            times[index] = (seconds, len(rows))
            yield from rows


def _iter_thread(
    tasks: list[_ShardTask],
    workers: int,
    times: dict[int, tuple[float, int]] | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Row]:
    """Row-streaming union over worker threads.

    Each worker streams its shard into a bounded queue in small chunks;
    the consumer interleaves chunks in arrival order.  Worker exceptions
    are re-raised in the consumer.  When the consumer stops early (or an
    error aborts it), the ``finally`` block raises a stop flag that
    unblocks and retires every remaining worker — no threads (or their
    shard data) outlive the generator; daemonizing is only a last line
    of defense for interpreter shutdown.
    """
    sink: queue_module.Queue = queue_module.Queue(maxsize=max(4, workers * 4))
    todo: queue_module.SimpleQueue = queue_module.SimpleQueue()
    for indexed_task in enumerate(tasks):
        todo.put(indexed_task)
    stop = threading.Event()

    def emit(item: tuple[str, object]) -> bool:
        """Enqueue unless the consumer is gone; False means abandon."""
        while not stop.is_set():
            try:
                sink.put(item, timeout=0.1)
                return True
            except queue_module.Full:
                continue
        return False

    def run() -> None:
        while not stop.is_set():
            try:
                index, task = todo.get_nowait()
            except queue_module.Empty:
                return
            try:
                started = time.perf_counter()
                count = 0
                chunk: list[Row] = []
                for row in _shard_rows(task):
                    if stop.is_set():
                        return
                    count += 1
                    chunk.append(row)
                    if len(chunk) >= _THREAD_CHUNK:
                        if not emit(("rows", chunk)):
                            return
                        chunk = []
                if chunk and not emit(("rows", chunk)):
                    return
                seconds = time.perf_counter() - started
                if not emit(("done", (index, seconds, count))):
                    return
            except BaseException as error:  # propagated to the consumer
                emit(("error", error))
                return

    # A fixed pool of `workers` threads draining the task queue — never
    # one thread per shard, so a huge shard count cannot exhaust OS
    # thread limits (or reserve a stack per shard).
    threads = [
        threading.Thread(target=run, daemon=True)
        for _ in range(min(workers, len(tasks)))
    ]
    for thread in threads:
        thread.start()
    try:
        finished = 0
        while finished < len(tasks):
            kind, payload = sink.get()
            if kind == "rows":
                yield from payload
            elif kind == "done":
                finished += 1
                if times is not None or tracer is not None:
                    index, seconds, count = payload
                    if times is not None:
                        times[index] = (seconds, count)
                    if tracer is not None:
                        # Worker threads share the process but not the
                        # tracer (it is single-driver by design): the
                        # parent synthesizes the shard span from the
                        # worker's completion report.  CPU time is
                        # unknown per thread; wall is the worker's own
                        # start-to-exhaustion clock.
                        tracer.attach(
                            Span(
                                name="shard",
                                meta={"shard": index, "rows": count},
                                wall=seconds,
                            )
                        )
            else:
                raise payload
    finally:
        stop.set()


@dataclass
class ShardJob:
    """One sharded execution, packaged for a scheduler.

    The driver functions (:func:`shard_join` / :func:`shard_fold`) plan
    the query, partition it into :class:`ShardPlanEntry` items, and hand
    a job to whatever implements the ``Scheduler`` protocol —
    :func:`_dispatch_local_join` (today's in-process pools) when the
    context carries no scheduler, or a
    :class:`~repro.distributed.DispatchScheduler` promoting the same
    shards to a remote worker fleet.

    Mutable by design: a scheduler that re-splits shards mid-run
    (work stealing) writes the *final* entry list back into
    ``entries[:]`` and their timings into ``times`` on completion, so
    the feedback/metrics wrappers downstream observe exactly what ran.
    """

    query: JoinQuery
    #: The planned shards; ``entries[i].key`` is the feedback key.
    entries: list[ShardPlanEntry]
    algorithm: str
    cover: FractionalCover | None
    attribute_order: tuple[str, ...] | None
    backend: str | None
    filters: tuple[tuple[str, object], ...] | None
    #: The plan's full attribute order — stealing splits a shard on the
    #: next attribute after its key's deepest one, exactly like the
    #: across-run ``expand_shards``.
    order: tuple[str, ...]
    mode: str = "auto"
    workers: int | None = None
    #: Shard index -> (seconds, rows); ``None`` disables timing.
    times: dict[int, tuple[float, int]] | None = None
    tracer: Tracer | None = None
    #: A :class:`~repro.query.shards.StealPolicy` (duck-typed; this
    #: module never imports the query layer) or ``None``.
    steal: object | None = None
    #: Scheduler-reported run counters (presplits, steals, retries...).
    stats: dict = field(default_factory=dict)

    def task_for(self, entry: ShardPlanEntry) -> _ShardTask:
        """The picklable worker task for one planned entry."""
        return _ShardTask(
            query=entry.query,
            algorithm=self.algorithm,
            cover=self.cover,
            attribute_order=self.attribute_order,
            backend=self.backend,
            filters=self.filters,
        )

    def tasks(self) -> list[_ShardTask]:
        return [self.task_for(entry) for entry in self.entries]


def _dispatch_local_join(job: ShardJob) -> Iterator[Row]:
    """Run a join job on the local pools (the default scheduler path).

    This is the dispatch logic :func:`shard_join` always had, factored
    out so :class:`~repro.distributed.LocalPoolScheduler` can expose the
    identical behavior behind the ``Scheduler`` protocol.
    """
    tasks = job.tasks()
    if job.mode == "serial" or len(tasks) == 1:
        return _iter_serial(tasks, job.times, job.tracer)
    # Serialize each task once, up front: every task must pickle
    # (shards partition the *values*, so one unpicklable value
    # poisons only the shard it landed in — sampling one task would
    # crash the pool mid-iteration), and the resulting bytes are
    # what the workers get, so the dataset is never pickled a
    # second time by the pool.
    payloads: list[bytes] | None = None
    resolved = job.mode
    if resolved in ("auto", "process"):
        try:
            payloads = [
                pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
                for task in tasks
            ]
        except Exception:
            if resolved == "process":
                raise  # explicitly requested: surface the error now
    if resolved == "auto":
        resolved = "process" if payloads is not None else "thread"
    pool_width = min(job.workers or len(tasks), len(tasks))
    if resolved == "process":
        return _iter_process(
            payloads,
            pool_width,
            job.times,
            job.tracer,
            job.tracer.context() if job.tracer is not None else None,
        )
    return _iter_thread(tasks, pool_width, job.times, job.tracer)


def shard_join(
    relations: Sequence[Relation] | JoinQuery,
    shards: int | str | None = None,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    mode: str = "auto",
    workers: int | None = None,
    database=None,
    filters=None,
    context=None,
) -> Iterator[Row]:
    """Run a join sharded on the planner's first attribute; union streams.

    The planner resolves algorithm / order / backend exactly as for the
    serial engine, then the first attribute's candidate values are
    partitioned into ``shards`` work-balanced groups
    (:func:`plan_shards`) and the whole engine runs once per shard.  The
    yielded row *set* is identical to serial ``iter_join`` — shards are
    disjoint slices of the output — but arrival order depends on shard
    completion order.

    Parameters mirror :func:`repro.api.iter_join`, plus:

    shards:
        Positive int, ``"auto"`` (from data statistics and CPU count),
        or ``None`` (same as ``"auto"``).
    mode:
        ``"process"``, ``"thread"``, ``"serial"``, or ``"auto"`` — see
        the module docstring.
    workers:
        Pool width for process/thread modes; defaults to the shard
        count.
    database:
        Optional :class:`~repro.relations.database.Database` whose
        statistics cache the *parent* plan consults (``shards="auto"``
        heavy-hitter sizing, attribute order).  Shard workers still
        build indexes from their restricted relations.
    filters:
        Residual per-attribute predicates (the query layer's pushdown);
        shipped to every shard worker and applied inside each shard's
        executor.
    context:
        An :class:`~repro.query.context.ExecutionContext` replacing the
        individual option keywords wholesale (``shards`` of ``None`` in
        a context means ``"auto"`` here, matching this function's
        historical default).

    All validation (unknown algorithm, incompatible backend, bad shard
    count or mode) happens *before* this returns an iterator.
    """
    if context is not None:
        # Only the fields this driver consumes directly; the planner
        # reads the rest from the context itself (no re-explosion).
        cover = context.cover
        attribute_order = context.attribute_order
        backend = context.backend
        mode = context.mode
        workers = context.workers
    if mode not in SHARD_MODES:
        raise PlanError(
            f"unknown shard mode {mode!r}; choose one of {SHARD_MODES}"
        )
    if workers is not None:
        require_positive_int(workers, "workers")
    query = _as_query(relations)
    tracer = context.tracer if context is not None else None
    metrics = context.metrics if context is not None else None
    if context is not None:
        parent_context = context.replace(
            shards=context.shards if context.shards is not None else "auto"
        )
        if tracer is not None:
            # The parent's planning phase (one plan for all shards);
            # per-shard re-planning is traced inside each shard span.
            with tracer.activate():
                plan = plan_join(query, context=parent_context)
        else:
            plan = plan_join(query, context=parent_context)
    else:
        plan = plan_join(
            query,
            algorithm,
            cover=cover,
            attribute_order=attribute_order,
            backend=backend,
            shards=shards if shards is not None else "auto",
            database=database,
        )
    attribute = plan.attribute_order[0]
    specs = plan_shards(query, plan.shards, attribute)
    if not specs:
        return iter(())

    # Options the distributed layer consumes ride on the ShardSpec the
    # context normalized; read duck-typed — this engine module never
    # imports the query layer (see the planner for the same rule).
    spec_obj = context.shards if context is not None else None
    predictive = bool(getattr(spec_obj, "predictive", False))
    steal = getattr(spec_obj, "steal", None)
    scheduler = context.scheduler if context is not None else None

    # The feedback re-split path: shards this query's earlier runs
    # measured as hot (wall time above the configured multiple of their
    # sibling median) are re-partitioned on the next attribute of the
    # plan's order and their sub-shards dispatched in their place — the
    # online "Skew Strikes Back" split.  Without recorded observations
    # the expansion is exactly the static plan.
    feedback = context.feedback if context is not None else None
    provider = None
    scope = ()
    if feedback is not None or predictive:
        scope = feedback_scope(filters)
        provider = resolve_provider(
            context.database if context is not None else database,
            context.stats if context is not None else None,
        )
    restricted_queries = _shard_queries(query, specs)
    entries = [
        ShardPlanEntry(
            key=((attribute, spec.values),),
            query=restricted,
            weight=spec.weight,
        )
        for spec, restricted in zip(specs, restricted_queries)
    ]
    if feedback is not None:
        observed = provider.observed_shards(query, scope)
        if observed:
            entries = expand_shards(
                entries, plan.attribute_order, observed, feedback
            )
    presplits = 0
    if predictive:
        # Predictive pre-split: shards whose value group holds a
        # heavy-hitter value are split one attribute deeper at
        # first-plan time — run one of a hub-heavy query behaves the
        # way run two used to after feedback.  Lazy import: the
        # distributed package imports this module.
        from repro.distributed.stealing import predictive_presplit

        entries, presplits = predictive_presplit(
            entries, plan.attribute_order, provider
        )

    task_filters = tuple(filters.items()) if filters else None
    times: dict[int, tuple[float, int]] | None = (
        {}
        if (
            feedback is not None
            or metrics is not None
            or scheduler is not None
        )
        else None
    )
    job = ShardJob(
        query=query,
        entries=entries,
        algorithm=plan.algorithm,
        cover=cover,
        attribute_order=(
            tuple(attribute_order) if attribute_order is not None else None
        ),
        backend=backend,
        filters=task_filters,
        order=plan.attribute_order,
        mode=mode,
        workers=workers,
        times=times,
        tracer=tracer,
        steal=steal,
    )
    if presplits:
        job.stats["presplits"] = presplits

    if scheduler is not None:
        stream = scheduler.run_join(job)
    else:
        stream = _dispatch_local_join(job)
    if feedback is not None:
        # ``job.entries``/``job.times``, not the locals: a stealing
        # scheduler rewrites both to what actually ran before the
        # wrapper records them.
        stream = _recorded_shard_stream(
            stream, job.times, job.entries, provider, query, scope
        )
    if metrics is not None:
        stream = _metered_shard_stream(
            stream,
            job.times,
            metrics,
            context.database if context is not None else database,
        )
    if tracer is not None:
        # Outermost, so the per-shard spans (opened or attached while
        # the inner streams drain) nest under this execute span.
        stream = _traced_shard_stream(tracer, stream, len(entries))
    return stream


def _traced_shard_stream(
    tracer: Tracer, stream: Iterator[Row], shard_count: int
) -> Iterator[Row]:
    """Drive a sharded run inside its parent ``execute`` span."""
    with tracer.span("execute", shards=shard_count) as span:
        count = 0
        for row in stream:
            count += 1
            yield row
        span.meta["rows"] = count


def _metered_shard_stream(
    stream: Iterator[Row],
    times: dict[int, tuple[float, int]],
    metrics,
    database,
) -> Iterator[Row]:
    """Drain a sharded run, then feed the metrics registry.

    Recorded only on natural exhaustion (an early-terminated consumer
    must not inflate the run counters); the shard-seconds histogram and
    imbalance gauge come from the same ``times`` the feedback loop uses.
    """
    count = 0
    for row in stream:
        count += 1
        yield row
    metrics.record_rows(count)
    if times:
        metrics.record_shards(
            seconds for seconds, _rows in times.values()
        )
    if database is not None:
        metrics.record_cache(database.cache_info())


def _recorded_shard_stream(
    stream: Iterator[Row],
    times: dict[int, tuple[float, int]],
    entries: list[ShardPlanEntry],
    provider,
    query: JoinQuery,
    scope: tuple,
) -> Iterator[Row]:
    """Drain a sharded run, then record its per-shard observations.

    Recording happens only when every shard reported a time — an
    early-terminated consumer leaves ``times`` incomplete, and partial
    timings must not drive next-run split decisions.
    """
    yield from stream
    if len(times) == len(entries):
        provider.record_shards(
            query,
            [
                ShardObservation(
                    key=entries[index].key,
                    seconds=seconds,
                    rows=count,
                    weight=entries[index].weight,
                )
                for index, (seconds, count) in sorted(times.items())
            ],
            scope,
        )


# ---------------------------------------------------------------------------
# Sharded aggregation
# ---------------------------------------------------------------------------


def _shard_fold_state(task: _ShardTask, spec):
    """Fold one shard into a partial aggregate state (worker primitive).

    Same skip/plan discipline as :func:`_shard_rows`; algorithms in
    :data:`~repro.engine.executors.NATIVE_FOLD` push the fold into their
    level loops, the rest fold their row stream.  Returns the *raw*
    state (not ``spec.finish``) so the parent can merge across shards.
    """
    if any(len(rel) == 0 for rel in task.query.relations.values()):
        return spec.start()
    plan = plan_join(
        task.query,
        task.algorithm,
        cover=task.cover,
        attribute_order=task.attribute_order,
        backend=task.backend,
    )
    filters = dict(task.filters) if task.filters else None
    if plan.algorithm in NATIVE_FOLD:
        executor = plan.executor(filters=filters)
        folder = Folder(spec, plan.attribute_order)
        executor.fold(folder)
        return folder.state
    return fold_state(
        plan.iter_rows(filters=filters), spec, task.query.attributes
    )


def _run_shard_fold_pickled(payload: bytes):
    """Process-pool entry point for sharded folds: ``(task, spec)`` was
    pickled together while probing picklability, so the spec rides the
    same bytes as the shard it aggregates."""
    task, spec = pickle.loads(payload)
    return _shard_fold_state(task, spec)


def shard_fold(
    relations: Sequence[Relation] | JoinQuery,
    spec,
    shards: int | str | None = None,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    mode: str = "auto",
    workers: int | None = None,
    database=None,
    filters=None,
    context=None,
):
    """Aggregate a sharded join without materializing it anywhere.

    Plans and partitions exactly like :func:`shard_join`, but each
    worker folds its shard into a partial
    :class:`~repro.aggregate.specs.AggregateSpec` state and ships only
    that state back; the parent merges the partials with ``spec.merge``
    and returns the merged *raw* state (callers apply ``spec.finish``).
    States are plain picklable values (ints, tuples, dicts), so process
    mode pays per-shard pickling for the inputs only — never for rows.

    Shards partition the output disjointly and every spec's ``merge``
    is associative and commutative over disjoint parts, so the merged
    state equals the serial fold's state regardless of mode or shard
    completion order.

    Feedback telemetry is *not* recorded here — per-shard row counts
    are exactly what the fold avoids computing; the query layer routes
    feedback-enabled aggregates through the recorded row stream instead.
    """
    if context is not None:
        cover = context.cover
        attribute_order = context.attribute_order
        backend = context.backend
        mode = context.mode
        workers = context.workers
    if mode not in SHARD_MODES:
        raise PlanError(
            f"unknown shard mode {mode!r}; choose one of {SHARD_MODES}"
        )
    if workers is not None:
        require_positive_int(workers, "workers")
    query = _as_query(relations)
    if context is not None:
        plan = plan_join(
            query,
            context=context.replace(
                shards=context.shards if context.shards is not None else "auto"
            ),
        )
    else:
        plan = plan_join(
            query,
            algorithm,
            cover=cover,
            attribute_order=attribute_order,
            backend=backend,
            shards=shards if shards is not None else "auto",
            database=database,
        )
    attribute = plan.attribute_order[0]
    specs = plan_shards(query, plan.shards, attribute)
    state = spec.start()
    if not specs:
        return state
    spec_obj = context.shards if context is not None else None
    predictive = bool(getattr(spec_obj, "predictive", False))
    steal = getattr(spec_obj, "steal", None)
    scheduler = context.scheduler if context is not None else None
    restricted_queries = _shard_queries(query, specs)
    entries = [
        ShardPlanEntry(
            key=((attribute, shard.values),),
            query=restricted,
            weight=shard.weight,
        )
        for shard, restricted in zip(specs, restricted_queries)
    ]
    presplits = 0
    if predictive:
        from repro.distributed.stealing import predictive_presplit

        provider = resolve_provider(
            context.database if context is not None else database,
            context.stats if context is not None else None,
        )
        entries, presplits = predictive_presplit(
            entries, plan.attribute_order, provider
        )
    task_filters = tuple(filters.items()) if filters else None
    job = ShardJob(
        query=query,
        entries=entries,
        algorithm=plan.algorithm,
        cover=cover,
        attribute_order=(
            tuple(attribute_order) if attribute_order is not None else None
        ),
        backend=backend,
        filters=task_filters,
        order=plan.attribute_order,
        mode=mode,
        workers=workers,
        times={} if scheduler is not None else None,
        steal=steal,
    )
    if presplits:
        job.stats["presplits"] = presplits
    if scheduler is not None:
        partials = scheduler.run_fold(job, spec)
    else:
        partials = _dispatch_local_fold(job, spec)
    for partial in partials:
        state = spec.merge(state, partial)
    return state


def _dispatch_local_fold(job: ShardJob, spec) -> list:
    """Fold a job's shards on the local pools; return the partial states.

    The partials come back in no particular order — every spec's
    ``merge`` is associative and commutative over disjoint parts, so the
    caller's fold over them is order-insensitive.
    """
    tasks = job.tasks()
    resolved = "serial" if len(tasks) == 1 else job.mode
    payloads: list[bytes] | None = None
    if resolved in ("auto", "process"):
        try:
            payloads = [
                pickle.dumps((task, spec), protocol=pickle.HIGHEST_PROTOCOL)
                for task in tasks
            ]
        except Exception:
            if resolved == "process":
                raise  # explicitly requested: surface the error now
        if resolved == "auto":
            resolved = "process" if payloads is not None else "thread"
    pool_width = min(job.workers or len(tasks), len(tasks))
    if resolved == "serial":
        return [_shard_fold_state(task, spec) for task in tasks]
    if resolved == "process":
        import multiprocessing

        pool_context = multiprocessing.get_context()
        with pool_context.Pool(processes=pool_width) as pool:
            return pool.map(_run_shard_fold_pickled, payloads)
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=pool_width) as pool:
        return list(
            pool.map(lambda task: _shard_fold_state(task, spec), tasks)
        )


# ---------------------------------------------------------------------------
# Async consumption
# ---------------------------------------------------------------------------


def aiter_join(
    relations: Sequence[Relation] | JoinQuery,
    algorithm: str = "auto",
    cover: FractionalCover | None = None,
    attribute_order: Sequence[str] | None = None,
    backend: str | None = None,
    shards: int | str | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    database=None,
) -> AsyncIterator[Row]:
    """Async wrapper over the streaming engine for event-loop servers.

    Returns an async iterator of rows.  The blocking join generator runs
    on worker threads via ``asyncio.to_thread`` and hands rows to the
    event loop ``batch_size`` at a time, so the loop blocks once per
    batch instead of once per row.  With ``shards`` set, rows come from
    :func:`shard_join`; otherwise from the serial engine.  ``database``
    supplies cached indexes and statistics — exactly what a long-lived
    server answering repeated queries wants.

    Planning — and therefore all argument validation — happens *now*,
    in this synchronous call, not at first ``anext()``: a bad request
    raises here, matching ``join`` / ``iter_join``.  (Context- and
    filter-carrying async consumption lives in the query layer —
    ``Q(...).astream()`` — which post-processes rows this function
    never sees; this entry point stays the bare async adapter.)
    """
    if shards is not None:
        rows = shard_join(
            relations,
            shards=shards,
            algorithm=algorithm,
            cover=cover,
            attribute_order=attribute_order,
            backend=backend,
            database=database,
        )
    else:
        plan = plan_join(
            _as_query(relations),
            algorithm,
            cover=cover,
            attribute_order=attribute_order,
            backend=backend,
            database=database,
        )
        rows = plan.iter_rows(database=database)
    batched = batches(rows, batch_size)

    async def stream() -> AsyncIterator[Row]:
        import asyncio

        while True:
            batch = await asyncio.to_thread(next, batched, None)
            if batch is None:
                return
            for row in batch:
                yield row

    return stream()
